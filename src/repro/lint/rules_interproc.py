"""The whole-program rule families: RL100–RL500.

==========  =================  ====================================================
Family      Name               Protects
==========  =================  ====================================================
RL100       interproc-         run-to-run identical figures against nondeterminism
            determinism        arriving *through helpers*: a call whose resolved
                               callee transitively returns a wall-clock read or
                               global-RNG draw, and iteration over a call that
                               returns a bare ``set`` (hash order)
RL200       unit-dimensions    the roofline/energy axes against dimensional
                               nonsense built from blessed helpers: seconds+bytes
                               arithmetic, unit-mismatched ``repro.units`` calls,
                               and double conversions
RL300       process-safety     campaign workers against module-level mutable
                               state: globals mutated inside functions in modules
                               importable from the worker entry points, and
                               functions returning references into such state
RL400       span-balance       the telemetry timeline against half-open spans: a
                               ``.span(...)``/``.async_span(...)`` opened outside
                               a ``with`` block is not closed on exception paths
RL500       clock-domain       the two-clock firewall: simulation-domain packages
                               (``repro.sim``/``mpi``/``network``/``workloads``)
                               must never import ``repro.hostprof`` — the
                               wall-clock-exempt host-observability layer depends
                               on the simulator, never the reverse
==========  =================  ====================================================

RL100–RL300 and RL500 are :class:`~repro.lint.engine.ProjectRule`\\ s — they
need the project graph; RL400 is per-file.  All five ride the standard
Finding/noqa/baseline machinery.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.engine import (
    FileContext,
    ProjectContext,
    ProjectRule,
    Rule,
    register,
)
from repro.lint.findings import Finding, Severity
from repro.lint.graph import ModuleInfo, dotted


def _in_scope(path: str, fragments) -> bool:
    posix = path.replace("\\", "/")
    return any(fragment in posix for fragment in fragments)


# ---------------------------------------------------------------------------
# RL100 — interprocedural determinism
# ---------------------------------------------------------------------------


@register
class InterprocDeterminismRule(ProjectRule):
    """RL100: nondeterminism reaching a call site through helpers."""

    rule_id = "RL100"
    name = "interproc-determinism"
    summary = (
        "a call whose callee transitively returns wall-clock/global-RNG "
        "values, or iteration over a callee-returned bare set, smuggles "
        "nondeterminism past the per-file checker"
    )

    def check_project(
        self, project: ProjectContext, config: LintConfig
    ) -> Iterator[Finding]:
        taints = project.taints
        graph = project.graph
        for module_name in sorted(graph.modules):
            info = graph.modules[module_name]
            if _in_scope(info.path, config.taint_exempt):
                continue
            for local in sorted(info.functions):
                func = info.functions[local]
                for site in func.calls:
                    found = taints.call_taints(module_name, site.node)
                    for kind in sorted(found):
                        witness = found[kind]
                        yield self.finding_at(
                            info.path, site.node,
                            f"{site.raw}() returns a value influenced by "
                            f"{witness.render()}; nondeterministic inputs "
                            "must not reach simulated results — thread "
                            "seeded RNGs / Environment.now instead",
                        )
                yield from self._check_set_iteration(
                    info, func.node, module_name, taints
                )

    def _check_set_iteration(
        self, info: ModuleInfo, func_node, module_name: str, taints
    ) -> Iterator[Finding]:
        for node in ast.walk(func_node):
            iterable = None
            if isinstance(node, ast.For):
                iterable = node.iter
            elif isinstance(node, ast.comprehension):
                iterable = node.iter
            if (
                isinstance(iterable, ast.Call)
                and taints.call_returns_set(module_name, iterable)
            ):
                yield self.finding_at(
                    info.path, iterable,
                    f"iteration over {dotted(iterable.func)}(), which "
                    "returns a bare set: ordering is hash-dependent; sort "
                    "it (or return a list) before it feeds scheduling",
                )


# ---------------------------------------------------------------------------
# RL200 — unit dimensions
# ---------------------------------------------------------------------------


@register
class UnitDimensionRule(ProjectRule):
    """RL200: dimensional contradictions across the project."""

    rule_id = "RL200"
    name = "unit-dimensions"
    summary = (
        "mixed-dimension arithmetic (seconds + bytes), unit-mismatched "
        "repro.units calls, and double conversions corrupt the roofline "
        "and energy axes"
    )

    def check_project(
        self, project: ProjectContext, config: LintConfig
    ) -> Iterator[Finding]:
        dims = project.dimensions
        graph = project.graph
        for module_name in sorted(graph.modules):
            info = graph.modules[module_name]
            if _in_scope(info.path, config.unit_exempt):
                continue
            for local in sorted(info.functions):
                func = info.functions[local]
                for mismatch in dims.check_function(func):
                    yield self.finding_at(
                        info.path, mismatch.node, mismatch.message
                    )


# ---------------------------------------------------------------------------
# RL300 — cache / process safety
# ---------------------------------------------------------------------------


@register
class ProcessSafetyRule(ProjectRule):
    """RL300: module-level mutable state visible to campaign workers."""

    rule_id = "RL300"
    name = "process-safety"
    summary = (
        "module-level mutable state in worker-importable modules diverges "
        "silently across processes; results must flow through return "
        "values or the fingerprinted store"
    )
    severity = Severity.WARNING

    def check_project(
        self, project: ProjectContext, config: LintConfig
    ) -> Iterator[Finding]:
        graph = project.graph
        reachable = graph.reachable_modules(config.process_roots)
        if not any(root in graph.modules for root in config.process_roots):
            # Partial tree (a subtree lint, a fixture): no worker entry
            # point in sight, so conservatively treat every module as
            # worker-visible.
            reachable = set(graph.modules)
        for module_name in sorted(reachable):
            info = graph.modules[module_name]
            for name in sorted(info.mutable_globals):
                glob = info.mutable_globals[name]
                if glob.mutation_lines:
                    lines = ", ".join(
                        str(n) for n in sorted(set(glob.mutation_lines))[:4]
                    )
                    yield self.finding_at(
                        info.path, glob.node,
                        f"module-level mutable {name!r} is mutated inside "
                        f"function bodies (line(s) {lines}) and the module "
                        "is importable from campaign worker processes; "
                        "per-process copies diverge silently — pass state "
                        "explicitly or publish through the result store",
                    )
            yield from self._check_escaping_returns(info)

    def _check_escaping_returns(self, info: ModuleInfo) -> Iterator[Finding]:
        for local in sorted(info.functions):
            func = info.functions[local]
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                target = node.value
                if isinstance(target, ast.Subscript):
                    target = target.value
                if (
                    isinstance(target, ast.Name)
                    and target.id in info.mutable_globals
                ):
                    yield self.finding_at(
                        info.path, node,
                        f"returning a reference into module-level "
                        f"{target.id!r}: cached objects escaping their "
                        "defensive snapshot can be mutated by one caller "
                        "and observed by the next — return a copy",
                    )


# ---------------------------------------------------------------------------
# RL500 — clock-domain firewall
# ---------------------------------------------------------------------------

#: Module prefixes that live on the simulated clock and must stay free of
#: host-clock (``repro.hostprof``) dependencies.
_SIM_DOMAIN_PREFIXES = (
    "repro.sim", "repro.mpi", "repro.network", "repro.workloads",
)
_HOSTPROF_PREFIX = "repro.hostprof"


def _in_domain(module_name: str, prefixes) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in prefixes
    )


@register
class ClockDomainRule(ProjectRule):
    """RL500: simulation-domain modules must not import repro.hostprof."""

    rule_id = "RL500"
    name = "clock-domain"
    summary = (
        "repro.hostprof is the only wall-clock-exempt package; a "
        "simulation-domain import of it would let host time leak into "
        "simulated results, so the dependency arrow must stay one-way"
    )

    def check_project(
        self, project: ProjectContext, config: LintConfig
    ) -> Iterator[Finding]:
        graph = project.graph
        for module_name in sorted(graph.modules):
            if not _in_domain(module_name, _SIM_DOMAIN_PREFIXES):
                continue
            info = graph.modules[module_name]
            # Walk the whole tree (not just the module body) so lazy
            # in-function imports cannot tunnel under the firewall.
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom) and not node.level:
                    names = [node.module or ""]
                else:
                    continue
                for imported in names:
                    if not _in_domain(imported, (_HOSTPROF_PREFIX,)):
                        continue
                    yield self.finding_at(
                        info.path, node,
                        f"simulation-domain module {module_name} imports "
                        f"{imported}: the host-clock package must depend "
                        "on the simulator, never the reverse — expose a "
                        "nullable hook (Environment.set_host_profiler) "
                        "instead",
                    )


# ---------------------------------------------------------------------------
# RL400 — telemetry span balance
# ---------------------------------------------------------------------------

#: Receiver leaf names that look like a telemetry sink.
_SINK_LEAVES = {"telemetry", "_telemetry", "sink", "_sink"}
_SPAN_METHODS = {"span", "async_span"}


@register
class SpanBalanceRule(Rule):
    """RL400: spans must be opened in ``with`` blocks."""

    rule_id = "RL400"
    name = "span-balance"
    summary = (
        "a telemetry span opened outside a with block is not closed on "
        "exception paths, leaving half-open intervals in exported traces"
    )

    def check(self, ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
        with_exprs: set[int] = set()
        with_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_exprs.add(id(item.context_expr))
                    if isinstance(item.context_expr, ast.Name):
                        with_names.add(item.context_expr.id)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and self._is_span_call(node.value):
                # ``s = t.span(...)`` then ``with s:`` is balanced.
                if all(
                    isinstance(t, ast.Name) and t.id in with_names
                    for t in node.targets
                ):
                    with_exprs.add(id(node.value))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_span_call(node) and id(node) not in with_exprs:
                yield self.finding(
                    ctx, node,
                    f"{dotted(node.func)}(...) opens a span outside a "
                    "`with` block: it will never close on an exception "
                    "path; use `with ...` (or bind it and `with` it)",
                )

    @staticmethod
    def _is_span_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        if not isinstance(node.func, ast.Attribute):
            return False
        if node.func.attr not in _SPAN_METHODS:
            return False
        receiver = dotted(node.func.value)
        if receiver is None:
            return False
        leaf = receiver.split(".")[-1]
        return leaf in _SINK_LEAVES or "telemetry" in leaf
