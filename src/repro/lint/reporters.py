"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Iterable

from repro.lint.findings import Finding


def render_text(findings: Iterable[Finding]) -> str:
    """One `path:line:col: RLxxx message` line per finding plus a summary."""
    findings = list(findings)
    lines = [f.render() for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """A JSON document: ``{"count": N, "findings": [...]}``."""
    findings = list(findings)
    return json.dumps(
        {"count": len(findings), "findings": [f.to_dict() for f in findings]},
        indent=2,
        sort_keys=True,
    )


def parse_json(document: str) -> list[Finding]:
    """Inverse of :func:`render_json` (used by tooling and tests)."""
    data = json.loads(document)
    return [Finding.from_dict(item) for item in data["findings"]]
