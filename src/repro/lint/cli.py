"""The ``python -m repro lint`` entry point.

Exit codes: 0 when the tree is clean, 1 when findings exist, 2 on usage
errors (bad paths, bad config).

Stream discipline: the findings report (text/json/sarif) goes to stdout;
everything advisory — cache status, suppression statistics, stale-noqa
and stale-baseline notices — goes to stderr.  CI relies on this split:
cold and warm runs must produce byte-identical stdout while stderr says
which one hit the cache.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ConfigurationError
from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.engine import RULES, LintResult, lint_project
from repro.lint.reporters import render_json, render_text
from repro.lint.sarif import render_sarif


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to *parser* (shared with the repro CLI)."""
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: paths from [tool.repro.lint])",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", nargs="*", metavar="RLxxx", default=None,
        help="run only these rule ids",
    )
    parser.add_argument(
        "--ignore", nargs="*", metavar="RLxxx", default=None,
        help="skip these rule ids",
    )
    parser.add_argument(
        "--config", default=None,
        help="pyproject.toml to read [tool.repro.lint] from "
             "(default: nearest one above the cwd)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of accepted findings "
             "(default: the configured [tool.repro.lint] baseline)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the incremental cache under .repro-cache/lint/",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.config is not None:
        config = load_config(args.config)
    else:
        pyproject = find_pyproject(Path.cwd())
        config = load_config(pyproject) if pyproject is not None else LintConfig()
    overrides = {}
    if args.select is not None:
        overrides["select"] = tuple(args.select)
    if args.ignore is not None:
        overrides["ignore"] = tuple(args.ignore)
    if getattr(args, "baseline", None) is not None:
        overrides["baseline"] = args.baseline
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    return config


def _list_rules() -> str:
    lines = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule_id} {rule.name:24s} {rule.summary}")
    return "\n".join(lines)


def _report_advisories(result: LintResult) -> None:
    """Cache/suppression/baseline accounting, on stderr only."""
    print(result.cache_status, file=sys.stderr)
    if result.suppressions.used:
        counts = ", ".join(
            f"{rule}: {n}" for rule, n in sorted(result.suppressions.used.items())
        )
        print(f"suppressions used ({counts})", file=sys.stderr)
    for path, line, rule in result.suppressions.stale:
        label = "all rules" if rule == "*" else rule
        print(
            f"stale suppression: {path}:{line} noqa[{label}] matched no finding",
            file=sys.stderr,
        )
    if result.baselined:
        print(f"baseline: {result.baselined} finding(s) accepted", file=sys.stderr)
    for entry in result.stale_baseline:
        print(f"stale baseline entry: {entry}", file=sys.stderr)


def _update_baseline(result: LintResult, config: LintConfig) -> int:
    from repro.lint.baseline import baseline_path, load_baseline, write_baseline

    path = baseline_path(config)
    if path is None:
        print(
            "repro lint: --update-baseline needs a baseline path "
            "(--baseline or [tool.repro.lint] baseline)",
            file=sys.stderr,
        )
        return 2
    # Re-apply nothing: the baseline should hold every *current* finding,
    # including ones the old baseline already accepted.
    previous = load_baseline(config)
    survivors = list(result.findings)
    count = write_baseline(path, survivors, previous=previous)
    print(f"baseline: wrote {count} entr{'y' if count == 1 else 'ies'} to {path}",
          file=sys.stderr)
    return 0


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        print(_list_rules())
        return 0
    try:
        config = _resolve_config(args)
        unknown = [
            r for r in (*config.select, *config.ignore) if r not in RULES
        ]
        if unknown:
            raise ConfigurationError(f"unknown rule ids: {', '.join(unknown)}")
        targets = [Path(p) for p in args.paths] if args.paths else config.resolved_paths()
        if not targets:
            raise ConfigurationError("nothing to lint: no paths given or configured")
        lint_config = config
        if args.update_baseline:
            # The new baseline must hold *every* current finding, including
            # ones the old baseline already accepts — lint unbaselined.
            from dataclasses import replace

            lint_config = replace(config, baseline="")
        result = lint_project(
            targets, config=lint_config, use_cache=not args.no_cache
        )
    except ConfigurationError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        return _update_baseline(result, config)
    _report_advisories(result)
    findings = result.findings
    if args.format == "json":
        report = render_json(findings)
    elif args.format == "sarif":
        report = render_sarif(findings)
    else:
        report = render_text(findings)
    print(report)
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Whole-program static analysis for the repro simulator "
                    "(determinism, unit dimensions, process safety, spans).",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
