"""The ``python -m repro lint`` entry point.

Exit codes: 0 when the tree is clean, 1 when findings exist, 2 on usage
errors (bad paths, bad config).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ConfigurationError
from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.engine import RULES, lint_paths
from repro.lint.reporters import render_json, render_text


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to *parser* (shared with the repro CLI)."""
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: paths from [tool.repro.lint])",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", nargs="*", metavar="RLxxx", default=None,
        help="run only these rule ids",
    )
    parser.add_argument(
        "--ignore", nargs="*", metavar="RLxxx", default=None,
        help="skip these rule ids",
    )
    parser.add_argument(
        "--config", default=None,
        help="pyproject.toml to read [tool.repro.lint] from "
             "(default: nearest one above the cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.config is not None:
        config = load_config(args.config)
    else:
        pyproject = find_pyproject(Path.cwd())
        config = load_config(pyproject) if pyproject is not None else LintConfig()
    overrides = {}
    if args.select is not None:
        overrides["select"] = tuple(args.select)
    if args.ignore is not None:
        overrides["ignore"] = tuple(args.ignore)
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    return config


def _list_rules() -> str:
    lines = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule_id} {rule.name:16s} {rule.summary}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        print(_list_rules())
        return 0
    try:
        config = _resolve_config(args)
        unknown = [
            r for r in (*config.select, *config.ignore) if r not in RULES
        ]
        if unknown:
            raise ConfigurationError(f"unknown rule ids: {', '.join(unknown)}")
        targets = [Path(p) for p in args.paths] if args.paths else config.resolved_paths()
        if not targets:
            raise ConfigurationError("nothing to lint: no paths given or configured")
        findings = lint_paths(targets, config=config)
    except ConfigurationError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    report = render_json(findings) if args.format == "json" else render_text(findings)
    print(report)
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static analysis for the repro simulator "
                    "(determinism, units, MPI/sim-kernel hygiene).",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
