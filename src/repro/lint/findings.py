"""The :class:`Finding` record emitted by lint rules.

A finding pins one rule violation to a file/line/column and carries enough
context to render a human line (`path:line:col: RLxxx message`) or a JSON
object that round-trips losslessly (``to_dict`` / ``from_dict``).
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass
from typing import Any

from repro.errors import ConfigurationError


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings corrupt results silently (nondeterminism, deadlock
    shapes, kernel misuse); ``WARNING`` findings are maintainability hazards
    that tend to become errors (magic units, ad-hoc exceptions).
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        """The canonical one-line text form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (severity as its string value)."""
        data = asdict(self)
        data["severity"] = self.severity.value
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                path=data["path"],
                line=int(data["line"]),
                col=int(data["col"]),
                rule=data["rule"],
                message=data["message"],
                severity=Severity(data["severity"]),
            )
        except (KeyError, ValueError) as exc:
            raise ConfigurationError(f"malformed finding record: {exc}") from exc

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable ordering: by path, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule)
