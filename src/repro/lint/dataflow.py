"""Interprocedural taint analysis for the determinism family (RL100).

The per-file determinism rule (RL001) flags a wall-clock read or global
RNG call *at the call site*.  What it cannot see is the same
nondeterminism arriving through a helper: ``stamp()`` defined two modules
away that returns ``time.time()``, or a function returning a bare ``set``
that a scheduler then iterates.  This module computes, for every function
in the project graph, a **taint summary**: which nondeterministic sources
can influence its return value.

The lattice is a powerset of source kinds (WALL_CLOCK, GLOBAL_RNG,
SET_ORDER); transfer functions union.  Propagation is a fixpoint over the
call graph: a function is tainted if any expression reachable from a
``return`` statement mentions a taint source directly or calls a function
whose summary is tainted.  The analysis is flow-insensitive inside a
function (an over-approximation — a tainted assignment anywhere taints
the name everywhere), which is the right polarity for a linter guarding
bit-reproducibility.

Each taint carries a *witness*: the location of the originating source,
reported to the user so a finding three frames above the read still names
the read.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.graph import FunctionInfo, ProjectGraph, dotted

#: Taint kinds.
WALL_CLOCK = "wall-clock"
GLOBAL_RNG = "global-rng"
SET_ORDER = "set-order"

#: Wall-clock dotted suffixes (kept in sync with the RL001 tables).
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
}

_STDLIB_RNG = {
    "random", "randint", "randrange", "uniform", "normalvariate", "gauss",
    "shuffle", "choice", "choices", "sample", "betavariate", "expovariate",
    "triangular", "vonmisesvariate",
}

_NUMPY_RNG = {
    "rand", "randn", "random", "randint", "random_sample", "shuffle",
    "permutation", "choice", "uniform", "normal", "standard_normal",
    "poisson", "exponential", "binomial",
}


@dataclass(frozen=True)
class Witness:
    """Where a taint originates (reported alongside downstream findings)."""

    kind: str
    detail: str
    path: str
    line: int

    def render(self) -> str:
        return f"{self.detail} at {self.path}:{self.line}"


@dataclass
class TaintSummary:
    """Per-function result: the taints its return value may carry."""

    #: kind -> originating witness (first in deterministic order).
    returns: dict[str, Witness]
    #: True when the function can return a bare set (hash-ordered).
    returns_set: bool = False


def classify_source_call(call: ast.Call) -> tuple[str, str] | None:
    """(kind, detail) when *call* is a direct nondeterminism source."""
    fn = dotted(call.func)
    if fn is None:
        return None
    parts = fn.split(".")
    tail2 = ".".join(parts[-2:])
    if tail2 in _WALL_CLOCK_CALLS:
        return (WALL_CLOCK, f"wall-clock read {fn}()")
    if len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_RNG:
        return (GLOBAL_RNG, f"module-level RNG {fn}()")
    if (
        len(parts) >= 3
        and parts[-3] in ("np", "numpy")
        and parts[-2] == "random"
        and parts[-1] in _NUMPY_RNG
    ):
        return (GLOBAL_RNG, f"module-level RNG {fn}()")
    if parts[-1] == "default_rng" and not call.args and not call.keywords:
        return (GLOBAL_RNG, "unseeded default_rng()")
    if fn == "random.Random" and not call.args and not call.keywords:
        return (GLOBAL_RNG, "unseeded random.Random()")
    return None


def _returns_bare_set(value: ast.AST) -> bool:
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        return dotted(value.func) == "set"
    return False


class _FunctionScan:
    """One function's local taint facts, before interprocedural closure."""

    def __init__(self, info: FunctionInfo, path: str) -> None:
        self.info = info
        self.path = path
        #: Local variable name -> witnesses flowing into it.
        self.var_taints: dict[str, dict[str, Witness]] = {}
        #: Variables assigned a bare set.
        self.set_vars: set[str] = set()
        #: Return expressions (for summary computation).
        self.returns: list[ast.AST] = []
        self._scan()

    def _scan(self) -> None:
        node = self.info.node
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt is not node:
                continue
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                self.returns.append(stmt.value)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._note_assignment(target.id, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self._note_assignment(stmt.target.id, stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    self._note_assignment(stmt.target.id, stmt.value)

    def _note_assignment(self, name: str, value: ast.AST) -> None:
        taints = self.direct_taints(value)
        if taints:
            self.var_taints.setdefault(name, {}).update(taints)
        if _returns_bare_set(value):
            self.set_vars.add(name)

    def direct_taints(self, expr: ast.AST) -> dict[str, Witness]:
        """Taints from sources and tainted names syntactically in *expr*."""
        found: dict[str, Witness] = {}
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                source = classify_source_call(node)
                if source is not None:
                    kind, detail = source
                    found.setdefault(
                        kind, Witness(kind, detail, self.path, node.lineno)
                    )
            elif isinstance(node, ast.Name) and node.id in self.var_taints:
                for kind, witness in self.var_taints[node.id].items():
                    found.setdefault(kind, witness)
        return found


class TaintAnalysis:
    """Whole-program taint summaries over a :class:`ProjectGraph`."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self.scans: dict[str, _FunctionScan] = {}
        self.summaries: dict[str, TaintSummary] = {}
        for func in graph.iter_functions():
            path = graph.modules[func.module].path
            self.scans[func.qualname] = _FunctionScan(func, path)
            self.summaries[func.qualname] = TaintSummary(returns={})
        self._fixpoint()

    # -- summary computation -------------------------------------------------

    def _expr_taints(self, qualname: str, expr: ast.AST) -> tuple[dict[str, Witness], bool]:
        """(taints, is-bare-set) for one expression in *qualname*."""
        scan = self.scans[qualname]
        taints = dict(scan.direct_taints(expr))
        is_set = _returns_bare_set(expr) or (
            isinstance(expr, ast.Name) and expr.id in scan.set_vars
        )
        func = self.graph.functions[qualname]
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            resolved = self.graph.resolve(func.module, dotted(node.func))
            summary = self.summaries.get(resolved) if resolved else None
            if summary is not None:
                for kind, witness in summary.returns.items():
                    taints.setdefault(kind, witness)
                if summary.returns_set and expr is node:
                    is_set = True
        return taints, is_set

    def _fixpoint(self) -> None:
        changed = True
        rounds = 0
        while changed and rounds < 50:
            changed = False
            rounds += 1
            for qualname in sorted(self.scans):
                scan = self.scans[qualname]
                summary = self.summaries[qualname]
                # Re-derive variable taints including callee summaries.
                for stmt in ast.walk(scan.info.node):
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                taints, is_set = self._expr_taints(qualname, stmt.value)
                                bucket = scan.var_taints.setdefault(target.id, {})
                                for kind, witness in taints.items():
                                    if kind not in bucket:
                                        bucket[kind] = witness
                                        changed = True
                                if is_set and target.id not in scan.set_vars:
                                    scan.set_vars.add(target.id)
                                    changed = True
                for expr in scan.returns:
                    taints, is_set = self._expr_taints(qualname, expr)
                    for kind, witness in taints.items():
                        if kind not in summary.returns:
                            summary.returns[kind] = witness
                            changed = True
                    if is_set and not summary.returns_set:
                        summary.returns_set = True
                        changed = True

    # -- queries -------------------------------------------------------------

    def call_taints(self, module: str, call: ast.Call) -> dict[str, Witness]:
        """Taints a call site pulls in via its (resolved) callee summary."""
        resolved = self.graph.resolve(module, dotted(call.func))
        if resolved is None:
            return {}
        summary = self.summaries.get(resolved)
        return dict(summary.returns) if summary else {}

    def call_returns_set(self, module: str, call: ast.Call) -> bool:
        """True when the resolved callee can return a bare set."""
        resolved = self.graph.resolve(module, dotted(call.func))
        if resolved is None:
            return False
        summary = self.summaries.get(resolved)
        return bool(summary and summary.returns_set)
