"""The repro rule pack: six invariants the paper's figures depend on.

========  ===============  ==========================================================
Rule      Name             Protects
========  ===============  ==========================================================
RL001     determinism      run-to-run identical figures (no wall clock, global RNG,
                           or set-order scheduling inputs)
RL002     sim-kernel       events actually waited on (``yield``) and only Events
                           yielded to the event loop
RL003     mpi-hygiene      deadlock-free SPMD call shapes (paired p2p, collectives
                           outside rank branches)
RL004     unit-safety      the bits/bytes and GB/GiB axes of the roofline figures
                           (conversions via ``repro.units``, not magic numbers)
RL005     error-hierarchy  the ``ReproError`` taxonomy (callers can catch precisely)
RL006     float-equality   threshold/convergence logic (no exact float compares)
RL007     diagnostics      the library/CLI boundary (no ``print`` or raw stderr
                           writes outside the CLI and the linter itself)
========  ===============  ==========================================================
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.engine import FileContext, Rule, register
from repro.lint.findings import Finding, Severity


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function in the module, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_statements(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a function body but stop at nested function/class boundaries."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# RL001 — determinism
# ---------------------------------------------------------------------------

#: Wall-clock reads: any of these dotted suffixes is nondeterministic input.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}

#: stdlib ``random`` module-level functions (the hidden global Mersenne state).
_STDLIB_RNG = {
    "random", "randint", "randrange", "uniform", "normalvariate", "gauss",
    "shuffle", "choice", "choices", "sample", "seed", "betavariate",
    "expovariate", "random_sample", "triangular", "vonmisesvariate",
}

#: ``numpy.random`` legacy module-level functions (hidden global RandomState).
_NUMPY_RNG = {
    "rand", "randn", "random", "randint", "random_sample", "seed", "shuffle",
    "permutation", "choice", "uniform", "normal", "standard_normal", "poisson",
    "exponential", "binomial",
}


@register
class DeterminismRule(Rule):
    """RL001: no wall clock, global RNG, or set-order iteration in sim paths."""

    rule_id = "RL001"
    name = "determinism"
    summary = (
        "wall-clock reads, module-level RNG, and bare-set iteration make "
        "runs unrepeatable"
    )

    def check(self, ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
        # The scoped wall-clock exemption (repro/hostprof/): host-side
        # profiling reads the real clock by design; RNG checks still apply.
        wallclock_ok = ctx.in_scope(config.wallclock_exempt)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, wallclock_ok)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                anchor = node if isinstance(node, ast.For) else iterable
                if self._is_bare_set(iterable):
                    yield self.finding(
                        ctx, anchor,
                        "iteration over a bare set: ordering is hash-dependent; "
                        "sort it (or use a list/dict) before it feeds scheduling",
                    )

    def _check_call(
        self, ctx: FileContext, node: ast.Call, wallclock_ok: bool = False
    ) -> Iterator[Finding]:
        fn = dotted_name(node.func)
        if fn is None:
            return
        parts = fn.split(".")
        tail2 = ".".join(parts[-2:])
        if tail2 in _WALL_CLOCK:
            if not wallclock_ok:
                yield self.finding(
                    ctx, node,
                    f"wall-clock read {fn}(): simulated time must come from "
                    "Environment.now",
                )
            return
        if len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_RNG:
            yield self.finding(
                ctx, node,
                f"module-level RNG {fn}(): thread a seeded random.Random "
                "through the constructor instead",
            )
            return
        if (
            len(parts) >= 3
            and parts[-3] in ("np", "numpy")
            and parts[-2] == "random"
            and parts[-1] in _NUMPY_RNG
        ):
            yield self.finding(
                ctx, node,
                f"module-level RNG {fn}(): thread a seeded "
                "numpy.random.Generator through the constructor instead",
            )
            return
        if parts[-1] == "default_rng" and not node.args and not node.keywords:
            yield self.finding(
                ctx, node,
                "default_rng() without a seed: pass an explicit seed so runs "
                "are reproducible",
            )
            return
        if fn == "random.Random" and not node.args and not node.keywords:
            yield self.finding(
                ctx, node,
                "random.Random() without a seed: pass an explicit seed so "
                "runs are reproducible",
            )

    @staticmethod
    def _is_bare_set(node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "set"
        )


# ---------------------------------------------------------------------------
# RL002 — sim-kernel misuse
# ---------------------------------------------------------------------------

#: Calls that mark a function as interacting with the discrete-event kernel.
_SIM_MARKERS = {
    "timeout", "process", "event", "all_of", "any_of",
    "gpu_kernel", "cpu_compute", "transfer", "succeed", "interrupt",
}
#: Event constructors/factories whose result is dead if not yielded/stored.
_EVENT_MAKERS = {"timeout", "event"}
_EVENT_CLASSES = {"Timeout", "Event", "AllOf", "AnyOf"}


@register
class SimKernelRule(Rule):
    """RL002: sim generators must yield Events, and must not drop them."""

    rule_id = "RL002"
    name = "sim-kernel"
    summary = (
        "a Timeout/Event created but never yielded, or a non-Event yielded, "
        "silently desynchronizes the simulation"
    )

    def check(self, ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
        for func in _functions(ctx.tree):
            body = list(_own_statements(func))
            if not self._is_sim_generator(body):
                continue
            for node in body:
                if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                    yield from self._check_dropped(ctx, node.value)
                elif isinstance(node, ast.Yield):
                    yield from self._check_yielded(ctx, node)

    def _is_sim_generator(self, body: list[ast.AST]) -> bool:
        has_yield = any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in body)
        if not has_yield:
            return False
        for node in body:
            if isinstance(node, ast.Call):
                fn = dotted_name(node.func)
                if fn is None:
                    continue
                leaf = fn.split(".")[-1]
                if leaf in _SIM_MARKERS or fn in _EVENT_CLASSES:
                    return True
        return False

    def _check_dropped(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        fn = dotted_name(call.func)
        if fn is None:
            return
        leaf = fn.split(".")[-1]
        if leaf in _EVENT_MAKERS or fn in _EVENT_CLASSES:
            yield self.finding(
                ctx, call,
                f"{fn}(...) creates an event that is never yielded or stored "
                "— the process will not wait on it",
            )

    def _check_yielded(self, ctx: FileContext, node: ast.Yield) -> Iterator[Finding]:
        if node.value is None:
            yield self.finding(
                ctx, node,
                "bare `yield` in a sim process yields None, which is not an "
                "Event",
            )
        elif isinstance(node.value, ast.Constant):
            yield self.finding(
                ctx, node,
                f"`yield {node.value.value!r}` hands a non-Event to the event "
                "loop; yield an Event (or use `yield from` for generators)",
            )


# ---------------------------------------------------------------------------
# RL003 — MPI hygiene
# ---------------------------------------------------------------------------

_P2P_SEND = {"send", "isend"}
_P2P_RECV = {"recv", "irecv"}
_P2P_BOTH = {"sendrecv"}
_COLLECTIVES = {
    "bcast", "barrier", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "reduce_scatter", "scan",
}


def _is_comm_call(node: ast.Call) -> str | None:
    """The MPI method name when *node* is a call on a ``comm`` object."""
    if not isinstance(node.func, ast.Attribute):
        return None
    method = node.func.attr
    if method not in _P2P_SEND | _P2P_RECV | _P2P_BOTH | _COLLECTIVES:
        return None
    receiver = dotted_name(node.func.value)
    if receiver is None:
        return None
    leaf = receiver.split(".")[-1]
    return method if leaf in ("comm", "communicator", "world") else None


def _mentions_rank(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in ("rank", "root"):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in ("rank", "root"):
            return True
    return False


@register
class MpiHygieneRule(Rule):
    """RL003: flag deadlock-shaped MPI call sequences in rank programs."""

    rule_id = "RL003"
    name = "mpi-hygiene"
    summary = (
        "unpaired point-to-point calls or rank-conditional collectives are "
        "deadlock-shaped: some rank waits forever"
    )

    def check(self, ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
        for func in _functions(ctx.tree):
            body = list(_own_statements(func))
            sends, recvs, boths = [], [], []
            for node in body:
                if isinstance(node, ast.Call):
                    method = _is_comm_call(node)
                    if method in _P2P_SEND:
                        sends.append(node)
                    elif method in _P2P_RECV:
                        recvs.append(node)
                    elif method in _P2P_BOTH:
                        boths.append(node)
            yield from self._check_collectives(ctx, func)
            if boths or (not sends and not recvs):
                continue
            if self._has_rank_branch(body):
                # Root/leaf asymmetry: pairing is data-dependent, give up.
                continue
            if sends and not recvs:
                yield self.finding(
                    ctx, sends[0],
                    "every rank sends but none receives in this function — "
                    "deadlock-shaped; pair sends with recv/sendrecv",
                )
            elif recvs and not sends:
                yield self.finding(
                    ctx, recvs[0],
                    "every rank receives but none sends in this function — "
                    "deadlock-shaped; pair recvs with send/sendrecv",
                )

    @staticmethod
    def _has_rank_branch(body: list[ast.AST]) -> bool:
        return any(
            isinstance(node, (ast.If, ast.IfExp)) and _mentions_rank(node.test)
            for node in body
        )

    def _check_collectives(
        self, ctx: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        """Collectives lexically inside a rank-conditional branch deadlock."""
        stack: list[tuple[ast.AST, bool]] = [(stmt, False) for stmt in func.body]
        while stack:
            node, in_rank_branch = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(node, ast.Call):
                method = _is_comm_call(node)
                if method in _COLLECTIVES and in_rank_branch:
                    yield self.finding(
                        ctx, node,
                        f"collective {method}() inside a rank-conditional "
                        "branch — collectives must be called by every rank",
                    )
            branch_flag = in_rank_branch
            if isinstance(node, ast.If) and _mentions_rank(node.test):
                for child in node.body + node.orelse:
                    stack.append((child, True))
                stack.append((node.test, in_rank_branch))
                continue
            for child in ast.iter_child_nodes(node):
                stack.append((child, branch_flag))


# ---------------------------------------------------------------------------
# RL004 — unit safety
# ---------------------------------------------------------------------------

#: Magic conversion factors and the repro.units helper that replaces them.
_MAGIC = {
    1e3: "units.KILO / units.to_ms()",
    1e6: "units.MEGA / units.mflops_per_watt()",
    1e9: "units.GIGA / units.gbyte_s() / units.gflops()",
    1e-3: "units.ms()",
    1e-6: "units.us()",
    1e-9: "units.to_gflops() / units.to_gbyte_s()",
    1024: "units.KB / units.kib()",
    1024.0: "units.KB / units.kib()",
    1048576: "units.MB / units.mib()",
    1073741824: "units.GB / units.gib()",
    8: "units.to_bits() / units.doubles()",
    8.0: "units.to_bits() / units.doubles()",
    1000: "units.KILO",
    1000000: "units.MEGA",
    1000000000: "units.GIGA",
}


@register
class UnitSafetyRule(Rule):
    """RL004: unit conversions must go through ``repro.units`` helpers."""

    rule_id = "RL004"
    name = "unit-safety"
    summary = (
        "magic-number conversions (1e9, 1024, *8) invite bits-vs-bytes and "
        "GB-vs-GiB mistakes on the roofline axes"
    )
    severity = Severity.WARNING

    def check(self, ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
        if ctx.in_scope(config.unit_exempt):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Mult, ast.Div)):
                continue
            for side in (node.left, node.right):
                value = self._magic_value(side)
                if value is not None:
                    yield self.finding(
                        ctx, node,
                        f"magic conversion factor {value!r}: use "
                        f"{_MAGIC[value]} (or a named constant) from "
                        "repro.units",
                    )
                    break

    @staticmethod
    def _magic_value(node: ast.AST) -> float | int | None:
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
            and node.value in _MAGIC
        ):
            return node.value
        return None


# ---------------------------------------------------------------------------
# RL005 — error hierarchy
# ---------------------------------------------------------------------------

_AD_HOC_ERRORS = {
    "ValueError",
    "RuntimeError",
    # Fault paths: builtin error types that hide injected failures from
    # callers catching the typed taxonomy (NetworkError, MPITimeoutError,
    # RankFailedError, NodeFailure, ...).
    "TimeoutError",
    "ConnectionError",
    "ConnectionResetError",
    "ConnectionAbortedError",
    "BrokenPipeError",
    "OSError",
    "IOError",
    "InterruptedError",
}


@register
class ErrorHierarchyRule(Rule):
    """RL005: raise the ``ReproError`` taxonomy, not bare builtins."""

    rule_id = "RL005"
    name = "error-hierarchy"
    summary = (
        "raising bare ValueError/RuntimeError hides failures from callers "
        "that catch the ReproError taxonomy"
    )
    severity = Severity.WARNING

    def check(self, ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _AD_HOC_ERRORS:
                yield self.finding(
                    ctx, node,
                    f"raise {name} inside repro: use the ReproError taxonomy "
                    "in repro.errors (ConfigurationError, SimulationError, "
                    "AnalysisError, ...) so callers can catch precisely",
                )


# ---------------------------------------------------------------------------
# RL006 — float equality
# ---------------------------------------------------------------------------


@register
class FloatEqualityRule(Rule):
    """RL006: no exact ==/!= against float literals in numeric paths."""

    rule_id = "RL006"
    name = "float-equality"
    summary = (
        "exact float comparison in convergence/threshold logic flips with "
        "rounding; use math.isclose or an explicit tolerance"
    )

    def check(self, ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
        if not ctx.in_scope(config.float_eq_paths):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, (left, right) in zip(node.ops, zip(operands, operands[1:])):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(self._is_float_literal(side) for side in (left, right)):
                    yield self.finding(
                        ctx, node,
                        "exact ==/!= against a float literal: use "
                        "math.isclose(), an explicit tolerance, or suppress "
                        "with a justification if exact-zero is intended",
                    )
                    break

    @staticmethod
    def _is_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        ):
            return True
        return False


# ---------------------------------------------------------------------------
# RL007 — diagnostic channels
# ---------------------------------------------------------------------------

#: ``sys.<stream>.write`` targets that bypass the CLI/telemetry layers.
_RAW_STREAMS = {"sys.stderr.write", "sys.stdout.write", "stderr.write", "stdout.write"}


@register
class DiagnosticChannelRule(Rule):
    """RL007: library code must not print or write raw streams.

    Simulation layers report through return values, the error taxonomy, or
    the telemetry sink; ad-hoc ``print()`` calls corrupt machine-read CLI
    output (the report artifacts) and are invisible to exporters.  The CLI
    layer and the linter's own reporters are exempt (``diagnostic-exempt``).
    """

    rule_id = "RL007"
    name = "diagnostics"
    summary = (
        "print()/raw stream writes in library code bypass the CLI and "
        "telemetry layers and corrupt machine-read output"
    )
    severity = Severity.WARNING

    def check(self, ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
        if ctx.in_scope(config.diagnostic_exempt):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = dotted_name(node.func)
            if fn == "print":
                yield self.finding(
                    ctx, node,
                    "print() in library code: return the value, raise a "
                    "ReproError, or record it on the telemetry sink; only "
                    "the CLI layer prints",
                )
            elif fn in _RAW_STREAMS:
                yield self.finding(
                    ctx, node,
                    f"{fn}() in library code: raw stream writes bypass the "
                    "CLI/telemetry layers; raise or record instead",
                )
