"""``repro.lint``: AST-based static analysis for the simulator.

The paper's figures depend on reproducible measurement; this package
machine-checks the invariants that keep them reproducible — determinism
(RL001), sim-kernel correctness (RL002), MPI call-shape hygiene (RL003),
unit safety (RL004), the error taxonomy (RL005), and float-comparison
discipline (RL006).  See ``docs/LINT.md`` for the rule catalogue.

Programmatic use::

    from repro.lint import lint_paths, load_config
    findings = lint_paths(["src/repro"], config=load_config("pyproject.toml"))

Command line::

    python -m repro lint [paths ...] [--format json]
"""

from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.engine import (
    ALL_RULES,
    RULES,
    FileContext,
    Rule,
    lint_paths,
    lint_source,
    register,
    suppressions,
)
from repro.lint.findings import Finding, Severity
from repro.lint.reporters import parse_json, render_json, render_text

# Importing the rule pack populates the registry.
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "LintConfig",
    "RULES",
    "Rule",
    "Severity",
    "find_pyproject",
    "lint_paths",
    "lint_source",
    "load_config",
    "parse_json",
    "register",
    "render_json",
    "render_text",
    "suppressions",
]
