"""``repro.lint``: whole-program static analysis for the simulator.

The paper's figures depend on reproducible measurement; this package
machine-checks the invariants that keep them reproducible.  The per-file
pack (RL001–RL007) covers determinism, sim-kernel correctness, MPI
call-shape hygiene, unit safety, the error taxonomy, float-comparison
discipline, and diagnostic channels.  The whole-program families ride a
project-wide symbol table and import/call graph: RL100 propagates
wall-clock/RNG/set-order taint interprocedurally, RL200 checks unit
*dimensions* (seconds, bytes, flops, joules and their rates), RL300
checks cache/process safety for campaign workers, and RL400 checks
telemetry span balance.  See ``docs/LINT.md`` for the rule catalogue.

Programmatic use::

    from repro.lint import lint_project, load_config
    result = lint_project(["src/repro"], config=load_config("pyproject.toml"))
    for finding in result.findings:
        print(finding.render())

Command line::

    python -m repro lint [paths ...] [--format json|sarif] [--no-cache]
"""

from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.engine import (
    ALL_RULES,
    RULES,
    FileContext,
    LintResult,
    ProjectContext,
    ProjectRule,
    Rule,
    SuppressionStats,
    lint_paths,
    lint_project,
    lint_source,
    register,
    suppressions,
)
from repro.lint.findings import Finding, Severity
from repro.lint.reporters import parse_json, render_json, render_text
from repro.lint.sarif import render_sarif

# Importing the rule packs populates the registry.
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)
from repro.lint import rules_interproc as _rules_interproc  # noqa: F401

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "ProjectContext",
    "ProjectRule",
    "RULES",
    "Rule",
    "Severity",
    "SuppressionStats",
    "find_pyproject",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_config",
    "parse_json",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "suppressions",
]
