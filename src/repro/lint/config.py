"""Lint configuration, loadable from ``[tool.repro.lint]`` in pyproject.toml.

Keys (all optional):

``select``
    Rule ids to run (default: every registered rule).
``ignore``
    Rule ids to skip even if selected.
``paths``
    Default lint targets, relative to the pyproject.toml directory.
``unit-exempt``
    Path fragments exempt from the unit-safety rule (RL004).  The
    ``repro.units`` module itself defines the conversions, so it is exempt
    by default.
``float-eq-paths``
    Path fragments where the float-equality rule (RL006) applies.
``diagnostic-exempt``
    Path fragments exempt from the diagnostic-channel rule (RL007): the
    CLI layer and the linter's own reporters print by design.
``taint-exempt``
    Path fragments exempt from the interprocedural determinism rule
    (RL100).
``wallclock-exempt``
    Path fragments where direct wall-clock reads are allowed (RL001's
    wall-clock check is skipped; RNG checks still apply).  Scoped to
    ``repro/hostprof/`` — the host-observability package is the only
    blessed clock-domain crossing, and RL500 keeps simulation-domain
    packages from importing it.
``process-roots``
    Module names treated as campaign-worker entry points for the
    process-safety rule (RL300); every module importable from a root is
    worker-visible.
``baseline``
    Path (relative to the config root) of the committed baseline of
    accepted findings; empty disables baselining.

Python 3.10 has no ``tomllib``; a tiny fallback parser handles the subset
of TOML this section needs (string values and string arrays) so the linter
never requires a third-party dependency.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 only
    tomllib = None  # type: ignore[assignment]

#: Where RL006 (float equality) applies unless configured otherwise.
DEFAULT_FLOAT_EQ_PATHS = ("sim/", "core/", "analysis/")
#: Path fragments exempt from RL004 unless configured otherwise.
DEFAULT_UNIT_EXEMPT = ("units.py",)
#: Path fragments exempt from RL007 unless configured otherwise.
DEFAULT_DIAGNOSTIC_EXEMPT = ("cli.py", "lint/")
#: Worker entry-point modules for RL300 unless configured otherwise.
DEFAULT_PROCESS_ROOTS = ("repro.campaign.runner", "repro.bench.runner")


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration."""

    select: tuple[str, ...] = ()  # empty = all registered rules
    ignore: tuple[str, ...] = ()
    paths: tuple[str, ...] = ("src/repro",)
    unit_exempt: tuple[str, ...] = DEFAULT_UNIT_EXEMPT
    float_eq_paths: tuple[str, ...] = DEFAULT_FLOAT_EQ_PATHS
    diagnostic_exempt: tuple[str, ...] = DEFAULT_DIAGNOSTIC_EXEMPT
    taint_exempt: tuple[str, ...] = ()
    wallclock_exempt: tuple[str, ...] = ()
    process_roots: tuple[str, ...] = DEFAULT_PROCESS_ROOTS
    #: Baseline file path relative to the config root; '' disables it.
    baseline: str = ""
    #: Directory the config file lives in; '' when defaulted.
    root: str = ""

    def enabled(self, rule_id: str) -> bool:
        """Whether *rule_id* should run under this config."""
        if rule_id in self.ignore:
            return False
        return not self.select or rule_id in self.select

    def resolved_paths(self) -> list[Path]:
        """The configured lint targets, anchored at the config root."""
        base = Path(self.root) if self.root else Path(".")
        return [base / p for p in self.paths]


def _as_str_tuple(value: object, key: str) -> tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if isinstance(value, list) and all(isinstance(v, str) for v in value):
        return tuple(value)
    raise ConfigurationError(f"[tool.repro.lint] {key} must be a string or string list")


_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_ARRAY_RE = re.compile(r"^(?P<key>[\w-]+)\s*=\s*\[(?P<body>.*)\]\s*$")
_STRING_RE = re.compile(r"^(?P<key>[\w-]+)\s*=\s*\"(?P<value>[^\"]*)\"\s*$")
_ITEM_RE = re.compile(r"\"([^\"]*)\"")


def _parse_lint_section(text: str) -> dict[str, object]:
    """Minimal TOML-subset parse of the ``[tool.repro.lint]`` section.

    Handles exactly what the lint config uses — one flat section with string
    and string-array values — so 3.10 works without tomllib.
    """
    section: dict[str, object] = {}
    in_section = False
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip() if not raw.lstrip().startswith('"') else raw
        if not line.strip():
            continue
        header = _SECTION_RE.match(line.strip())
        if header:
            in_section = header.group("name").strip() == "tool.repro.lint"
            continue
        if not in_section:
            continue
        array = _ARRAY_RE.match(line.strip())
        if array:
            section[array.group("key")] = _ITEM_RE.findall(array.group("body"))
            continue
        string = _STRING_RE.match(line.strip())
        if string:
            section[string.group("key")] = string.group("value")
    return section


def _lint_table(pyproject: Path) -> dict[str, object]:
    text = pyproject.read_text(encoding="utf-8")
    if tomllib is not None:
        data = tomllib.loads(text)
        table = data.get("tool", {}).get("repro", {}).get("lint", {})
        if not isinstance(table, dict):
            raise ConfigurationError("[tool.repro.lint] must be a table")
        return table
    return _parse_lint_section(text)


def load_config(pyproject: Path | str) -> LintConfig:
    """Build a :class:`LintConfig` from a pyproject.toml file."""
    pyproject = Path(pyproject)
    if not pyproject.is_file():
        raise ConfigurationError(f"no such config file: {pyproject}")
    table = _lint_table(pyproject)
    kwargs: dict[str, object] = {}
    mapping = {
        "select": "select",
        "ignore": "ignore",
        "paths": "paths",
        "unit-exempt": "unit_exempt",
        "float-eq-paths": "float_eq_paths",
        "diagnostic-exempt": "diagnostic_exempt",
        "taint-exempt": "taint_exempt",
        "wallclock-exempt": "wallclock_exempt",
        "process-roots": "process_roots",
        "baseline": "baseline",
    }
    for toml_key, attr in mapping.items():
        if toml_key not in table:
            continue
        if attr == "baseline":
            if not isinstance(table[toml_key], str):
                raise ConfigurationError(
                    "[tool.repro.lint] baseline must be a string"
                )
            kwargs[attr] = table[toml_key]
        else:
            kwargs[attr] = _as_str_tuple(table[toml_key], toml_key)
    unknown = set(table) - set(mapping)
    if unknown:
        raise ConfigurationError(
            f"unknown [tool.repro.lint] keys: {', '.join(sorted(unknown))}"
        )
    return LintConfig(root=str(pyproject.parent), **kwargs)


def find_pyproject(start: Path | str = ".") -> Path | None:
    """Walk up from *start* to locate the governing pyproject.toml."""
    here = Path(start).resolve()
    for candidate in (here, *here.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
