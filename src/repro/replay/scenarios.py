"""Canned replay scenarios: ideal network, ideal load balance."""

from __future__ import annotations

from repro.hardware.nic import NICSpec
from repro.network.switch import SwitchSpec
from repro.replay.dimemas import IDEAL_NETWORK, NetworkParams, replay
from repro.tracing.events import Trace
from repro.units import gbyte_s


def network_from_nic(nic: NICSpec, switch: SwitchSpec,
                     local_bandwidth: float = gbyte_s(7.0)) -> NetworkParams:
    """Replay parameters matching a real NIC + switch pair."""
    return NetworkParams(
        latency=nic.latency_one_way + switch.latency,
        bandwidth=nic.achievable_rate,
        local_bandwidth=local_bandwidth,
    )


def ideal_network_runtime(trace: Trace, rank_to_node: list[int] | None = None) -> float:
    """Runtime with zero latency and unlimited bandwidth (DIMEMAS ideal)."""
    return replay(trace, IDEAL_NETWORK, rank_to_node=rank_to_node).runtime


def ideal_load_balance_runtime(
    trace: Trace,
    network: NetworkParams,
    rank_to_node: list[int] | None = None,
) -> float:
    """Runtime with every rank carrying the average compute load.

    As in the paper, the measured network (not the ideal one) is used so the
    two effects are studied in isolation: pass the network that produced the
    trace.
    """
    compute = trace.compute_seconds_all()
    avg = sum(compute) / len(compute)
    scale = [avg / c if c > 0 else 1.0 for c in compute]
    return replay(trace, network, compute_scale=scale, rank_to_node=rank_to_node).runtime
