"""DIMEMAS-style trace replay under configurable networks.

Replaying a measured trace with different network parameters answers the
paper's what-if questions: the *ideal network* (zero latency, unlimited
bandwidth) isolates serialization from transfer cost, and the *ideal load
balance* transform rescales each rank's compute so all ranks carry the
average load.
"""

from repro.replay.dimemas import IDEAL_NETWORK, NetworkParams, ReplayResult, replay
from repro.replay.scenarios import (
    ideal_load_balance_runtime,
    ideal_network_runtime,
    network_from_nic,
)

__all__ = [
    "IDEAL_NETWORK",
    "NetworkParams",
    "ReplayResult",
    "ideal_load_balance_runtime",
    "ideal_network_runtime",
    "network_from_nic",
    "replay",
]
