"""The replay engine: re-times a trace under new network parameters."""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass

from repro.errors import TraceError
from repro.tracing.events import CommRecord, RecvRecord, StateRecord, Trace


@dataclass(frozen=True)
class NetworkParams:
    """The replayed network: per-message latency and bandwidth."""

    latency: float  # seconds, one-way
    bandwidth: float  # bytes/s; math.inf for the ideal network
    # Intra-node messages (both ranks on one node) use the local bus instead.
    local_bandwidth: float = math.inf
    local_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.local_latency < 0:
            raise TraceError("latency must be non-negative")
        if self.bandwidth <= 0 or self.local_bandwidth <= 0:
            raise TraceError("bandwidth must be positive")


#: Zero-latency, infinite-bandwidth network (the DIMEMAS ideal case).
IDEAL_NETWORK = NetworkParams(latency=0.0, bandwidth=math.inf)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one replay."""

    runtime: float
    rank_finish_times: tuple[float, ...]
    messages_replayed: int

    def speedup_over(self, original_runtime: float) -> float:
        """How much faster the replayed scenario is."""
        if self.runtime <= 0:
            return math.inf
        return original_runtime / self.runtime


def replay(
    trace: Trace,
    network: NetworkParams,
    compute_scale: list[float] | None = None,
    rank_to_node: list[int] | None = None,
) -> ReplayResult:
    """Re-time *trace* under *network*.

    Each rank's op stream (compute bursts, sends, receives) is re-executed
    with original compute durations (optionally scaled per-rank by
    ``compute_scale``) and transfer costs recomputed from *network*.
    Send/receive matching is FIFO per (src, dst, tag) channel, mirroring the
    simulator's mailbox semantics.
    """
    n = trace.n_ranks
    if compute_scale is not None and len(compute_scale) != n:
        raise TraceError("compute_scale must have one entry per rank")
    scale = compute_scale or [1.0] * n

    ops = [deque(trace.rank_ops(r)) for r in range(n)]
    clocks = [0.0] * n
    arrivals: dict[tuple[int, int, int], deque[float]] = defaultdict(deque)
    messages = 0

    def transfer_cost(src: int, dst: int, nbytes: float) -> float:
        if (
            rank_to_node is not None
            and rank_to_node[src] == rank_to_node[dst]
        ):
            bw, lat = network.local_bandwidth, network.local_latency
        else:
            bw, lat = network.bandwidth, network.latency
        return lat + (nbytes / bw if math.isfinite(bw) else 0.0)

    remaining = sum(len(q) for q in ops)
    while remaining:
        progressed = False
        for rank in range(n):
            queue = ops[rank]
            while queue:
                op = queue[0]
                if isinstance(op, StateRecord):
                    clocks[rank] += op.seconds * scale[rank]
                elif isinstance(op, CommRecord):
                    cost = transfer_cost(op.src, op.dst, op.nbytes)
                    clocks[rank] += cost
                    arrivals[(op.src, op.dst, op.tag)].append(clocks[rank])
                    messages += 1
                elif isinstance(op, RecvRecord):
                    channel = arrivals[(op.src, op.rank, op.tag)]
                    if not channel:
                        break  # blocked: matching send not replayed yet
                    clocks[rank] = max(clocks[rank], channel.popleft())
                else:  # pragma: no cover - defensive
                    raise TraceError(f"unknown op {op!r}")
                queue.popleft()
                remaining -= 1
                progressed = True
        if not progressed:
            raise TraceError("replay deadlocked: unmatched receive in trace")

    return ReplayResult(
        runtime=max(clocks) if clocks else 0.0,
        rank_finish_times=tuple(clocks),
        messages_replayed=messages,
    )
