"""Trace record types and the Trace container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TraceError


@dataclass(frozen=True)
class StateRecord:
    """A rank spent [start, end] in *state* ('compute' or 'gpu')."""

    rank: int
    state: str
    start: float
    end: float

    @property
    def seconds(self) -> float:
        """Duration of the state burst."""
        return self.end - self.start


@dataclass(frozen=True)
class CommRecord:
    """A send: *src* pushed *nbytes* toward *dst* over [start, end]."""

    src: int
    dst: int
    nbytes: float
    start: float
    end: float
    tag: int

    @property
    def seconds(self) -> float:
        """Send-side duration (serialization + latency)."""
        return self.end - self.start


@dataclass(frozen=True)
class RecvRecord:
    """A receive completed on *rank* from *src* over [start, end]."""

    rank: int
    src: int
    nbytes: float
    start: float
    end: float
    tag: int

    @property
    def seconds(self) -> float:
        """Receive-side wait duration."""
        return self.end - self.start


@dataclass(frozen=True)
class MarkerRecord:
    """A phase/iteration boundary emitted by the workload."""

    rank: int
    label: str
    time: float


@dataclass
class Trace:
    """A finished trace: all records plus world metadata."""

    n_ranks: int
    states: list[StateRecord] = field(default_factory=list)
    comms: list[CommRecord] = field(default_factory=list)
    recvs: list[RecvRecord] = field(default_factory=list)
    markers: list[MarkerRecord] = field(default_factory=list)
    t_start: float = 0.0
    t_end: float = 0.0

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise TraceError("trace needs at least one rank")

    @property
    def duration(self) -> float:
        """Wall-clock span of the trace."""
        return self.t_end - self.t_start

    #: States counted as local useful work (host-device copies included:
    #: the paper folds host/device synchronization into the Ser factor).
    USEFUL_STATES = ("compute", "gpu", "copy")

    def compute_seconds(self, rank: int, states: tuple[str, ...] | None = None) -> float:
        """Total useful (compute/gpu/copy) time of *rank*."""
        states = states or self.USEFUL_STATES
        return sum(s.seconds for s in self.states if s.rank == rank and s.state in states)

    def compute_seconds_all(self) -> list[float]:
        """Useful time per rank, rank-ordered."""
        totals = [0.0] * self.n_ranks
        for s in self.states:
            if s.state in self.USEFUL_STATES:
                totals[s.rank] += s.seconds
        return totals

    def bytes_sent(self, rank: int) -> float:
        """Total bytes sent by *rank*."""
        return sum(c.nbytes for c in self.comms if c.src == rank)

    def total_network_bytes(self) -> float:
        """All bytes on the wire (excluding loopback, which the fabric skips)."""
        return sum(c.nbytes for c in self.comms)

    def rank_ops(self, rank: int) -> list[object]:
        """The rank's ordered op stream (states, sends, recvs) by start time.

        This is the replay engine's input.
        """
        ops: list[tuple[float, float, object]] = []
        for s in self.states:
            if s.rank == rank and s.state in self.USEFUL_STATES:
                # Overlapped bursts (e.g. hpl look-ahead) are excluded: the
                # sequential replay would wrongly serialize them.
                ops.append((s.start, s.end, s))
        for c in self.comms:
            if c.src == rank:
                ops.append((c.start, c.end, c))
        for r in self.recvs:
            if r.rank == rank:
                ops.append((r.start, r.end, r))
        # Sort by (start, end): an op that *ends* at time t (e.g. a receive
        # completing) precedes an op that *starts* at t (the compute it
        # unblocked), preserving program order in the replayed stream.
        ops.sort(key=lambda item: (item[0], item[1]))
        return [op for _, _, op in ops]
