"""The live trace collector handed to jobs."""

from __future__ import annotations

from repro.errors import TraceError
from repro.telemetry.sink import NULL
from repro.tracing.events import (
    CommRecord,
    MarkerRecord,
    RecvRecord,
    StateRecord,
    Trace,
)


class Tracer:
    """Collects state/comm/marker records during a run.

    The MPI layer calls :meth:`record_comm` / :meth:`record_recv`; rank
    contexts call :meth:`record_state`; workloads call :meth:`mark` at
    iteration boundaries so Paraver-style chopping can find them.

    When a telemetry sink is attached with :meth:`bind_telemetry`, every
    record is also mirrored onto the sink's per-rank tracks as spans on the
    same simulated-time axis — one tracing system, two consumers.
    """

    def __init__(self, n_ranks: int, telemetry=None) -> None:
        if n_ranks < 1:
            raise TraceError("tracer needs at least one rank")
        self.n_ranks = n_ranks
        self._states: list[StateRecord] = []
        self._comms: list[CommRecord] = []
        self._recvs: list[RecvRecord] = []
        self._markers: list[MarkerRecord] = []
        self._telemetry = telemetry if telemetry is not None else NULL

    def bind_telemetry(self, telemetry) -> None:
        """Mirror all subsequent records onto *telemetry* (``None`` detaches)."""
        self._telemetry = telemetry if telemetry is not None else NULL

    def record_state(self, rank: int, state: str, start: float, end: float) -> None:
        """One compute/GPU burst on *rank*."""
        self._check_rank(rank)
        if end < start:
            raise TraceError(f"state ends before it starts: {start} > {end}")
        self._states.append(StateRecord(rank, state, start, end))
        self._telemetry.record_span(f"rank{rank}", state, "rank", start, end)

    def record_comm(
        self, src: int, dst: int, nbytes: float, start: float, end: float, tag: int
    ) -> None:
        """One send from *src* to *dst* (called by the MPI layer)."""
        self._check_rank(src)
        self._check_rank(dst)
        self._comms.append(CommRecord(src, dst, nbytes, start, end, tag))
        self._telemetry.record_span(
            f"rank{src}", f"comm->r{dst}", "rank", start, end,
            kind="async", nbytes=nbytes, tag=tag,
        )

    def record_recv(
        self, rank: int, src: int, nbytes: float, start: float, end: float, tag: int
    ) -> None:
        """One completed receive on *rank* from *src*."""
        self._check_rank(rank)
        self._recvs.append(RecvRecord(rank, src, nbytes, start, end, tag))
        self._telemetry.record_span(
            f"rank{rank}", f"recv<-r{src}", "rank", start, end,
            kind="async", nbytes=nbytes, tag=tag,
        )

    def mark(self, rank: int, label: str, time: float) -> None:
        """A phase/iteration boundary."""
        self._check_rank(rank)
        self._markers.append(MarkerRecord(rank, label, time))
        self._telemetry.record_span(
            f"rank{rank}", label, "rank", time, time, kind="instant",
        )

    def finalize(self, t_start: float = 0.0, t_end: float | None = None) -> Trace:
        """Freeze into a :class:`Trace`; *t_end* defaults to the last record."""
        if t_end is None:
            candidates = (
                [s.end for s in self._states]
                + [c.end for c in self._comms]
                + [r.end for r in self._recvs]
                + [m.time for m in self._markers]
            )
            t_end = max(candidates, default=t_start)
        return Trace(
            n_ranks=self.n_ranks,
            states=list(self._states),
            comms=list(self._comms),
            recvs=list(self._recvs),
            markers=list(self._markers),
            t_start=t_start,
            t_end=t_end,
        )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise TraceError(f"rank {rank} outside [0, {self.n_ranks})")
