"""Paraver-style trace chopping.

The paper chops iterative benchmarks' traces into single-iteration windows
(PARAVER) before feeding them to DIMEMAS.  We reproduce that with marker-
based chopping: workloads emit ``iteration`` markers on rank 0; the space
between consecutive markers is one iteration window.
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.tracing.events import Trace


def chop_window(trace: Trace, t0: float, t1: float) -> Trace:
    """A sub-trace containing records overlapping [t0, t1], clipped.

    States are clipped to the window; comms/recvs are kept if they *start*
    inside it (the replay engine re-times them anyway).
    """
    if t1 <= t0:
        raise TraceError(f"empty window [{t0}, {t1}]")
    states = [
        type(s)(s.rank, s.state, max(s.start, t0), min(s.end, t1))
        for s in trace.states
        if s.end > t0 and s.start < t1
    ]
    comms = [c for c in trace.comms if t0 <= c.start < t1]
    recvs = [r for r in trace.recvs if t0 <= r.start < t1]
    markers = [m for m in trace.markers if t0 <= m.time < t1]
    return Trace(
        n_ranks=trace.n_ranks,
        states=states,
        comms=comms,
        recvs=recvs,
        markers=markers,
        t_start=t0,
        t_end=t1,
    )


def chop_iterations(trace: Trace, label: str = "iteration", rank: int = 0) -> list[Trace]:
    """Split into per-iteration windows between *rank*'s markers.

    The paper uses the whole trace as a single phase for hpl (no markers) —
    callers get that behaviour by simply not emitting markers, in which case
    this returns the full trace as one window.
    """
    times = sorted(m.time for m in trace.markers if m.label == label and m.rank == rank)
    if len(times) < 2:
        return [trace]
    return [chop_window(trace, t0, t1) for t0, t1 in zip(times[:-1], times[1:])]
