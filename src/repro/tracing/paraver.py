"""Paraver-style trace chopping and the ``.prv`` text exporter.

The paper chops iterative benchmarks' traces into single-iteration windows
(PARAVER) before feeding them to DIMEMAS.  We reproduce that with marker-
based chopping: workloads emit ``iteration`` markers on rank 0; the space
between consecutive markers is one iteration window.

The exporter writes the classic Paraver text format so our traces open in
the same tool the paper used: ``1:`` state records, ``2:`` event records
(markers), and ``3:`` communication records (each send FIFO-matched to its
receive).  Output is deterministic — fixed header stamp, nanosecond integer
times, total-order sort keys — so the same trace always serializes to the
same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TraceError
from repro.tracing.events import Trace

#: Paraver state values for the ``.prv`` / ``.pcf`` pair.  Fixed numbering
#: (never reordered) so old traces stay readable; unknown states map to 0.
STATE_VALUES = {
    "idle": 0,
    "compute": 1,
    "gpu": 2,
    "copy": 3,
    "overlap": 4,
}

#: Paraver event type used for workload markers (user-function range).
MARKER_EVENT_TYPE = 70000001

_NS = 1e9  # Paraver times are integer nanoseconds.


def _ns(t: float) -> int:
    return round(t * _NS)


def to_prv_text(trace: Trace) -> str:
    """Serialize *trace* as Paraver ``.prv`` text (byte-stable).

    One line per record: states (type 1), marker events (type 2), and
    communications (type 3, send matched to its receive through the same
    per-(src, dst) FIFO order the mailboxes deliver in).  Records are
    sorted by (time, type, rank, ...) total-order keys.
    """
    n = trace.n_ranks
    duration = _ns(trace.t_end)
    appl = ",".join("1:1" for _ in range(n))
    header = (f"#Paraver (00/00/00 at 00:00):{duration}_ns:"
              f"1({n}):1:{n}({appl})")
    lines: list[tuple[tuple, str]] = []
    for s in trace.states:
        cpu = s.rank + 1
        value = STATE_VALUES.get(s.state, 0)
        key = (_ns(s.start), 1, s.rank, _ns(s.end), value)
        lines.append((key, f"1:{cpu}:1:{cpu}:1:{_ns(s.start)}:{_ns(s.end)}:{value}"))
    for m in trace.markers:
        cpu = m.rank + 1
        key = (_ns(m.time), 2, m.rank, 0, 0)
        lines.append((key, f"2:{cpu}:1:{cpu}:1:{_ns(m.time)}:"
                           f"{MARKER_EVENT_TYPE}:1"))
    for comm, recv in _match_comms(trace):
        scpu = comm.src + 1
        dcpu = comm.dst + 1
        if recv is not None:
            log_recv, phys_recv = _ns(recv.start), _ns(recv.end)
        else:
            # A send whose receive never completed (fault path): close the
            # record at the send's own end so the line stays well-formed.
            log_recv = phys_recv = _ns(comm.end)
        key = (_ns(comm.start), 3, comm.src, comm.dst, _ns(comm.end))
        lines.append((key, f"3:{scpu}:1:{scpu}:1:{_ns(comm.start)}:{_ns(comm.end)}:"
                           f"{dcpu}:1:{dcpu}:1:{log_recv}:{phys_recv}:"
                           f"{round(comm.nbytes)}:{comm.tag}"))
    lines.sort(key=lambda item: item[0])
    return "\n".join([header] + [line for _, line in lines]) + "\n"


def to_pcf_text() -> str:
    """The companion ``.pcf`` config naming the state and event values."""
    lines = [
        "DEFAULT_OPTIONS",
        "",
        "LEVEL               THREAD",
        "UNITS               NANOSEC",
        "",
        "STATES",
    ]
    lines += [f"{value}    {name.upper()}"
              for name, value in sorted(STATE_VALUES.items(), key=lambda kv: kv[1])]
    lines += [
        "",
        "EVENT_TYPE",
        f"9    {MARKER_EVENT_TYPE}    Workload marker",
        "VALUES",
        "1      marker",
    ]
    return "\n".join(lines) + "\n"


def write_prv(trace: Trace, path: str | Path) -> tuple[Path, Path]:
    """Write ``<path>`` (.prv) plus its sibling ``.pcf``; returns both paths."""
    prv_path = Path(path)
    prv_path.write_text(to_prv_text(trace), encoding="utf-8")
    pcf_path = prv_path.with_suffix(".pcf")
    pcf_path.write_text(to_pcf_text(), encoding="utf-8")
    return prv_path, pcf_path


def _match_comms(trace: Trace):
    """Pair each CommRecord with its RecvRecord in per-(src, dst) FIFO order."""
    recv_queues: dict[tuple[int, int], list] = {}
    for r in sorted(trace.recvs, key=lambda r: (r.end, r.start, r.src, r.rank)):
        recv_queues.setdefault((r.src, r.rank), []).append(r)
    positions: dict[tuple[int, int], int] = {}
    pairs = []
    for c in sorted(trace.comms, key=lambda c: (c.end, c.start, c.src, c.dst)):
        queue = recv_queues.get((c.src, c.dst), [])
        index = positions.get((c.src, c.dst), 0)
        recv = queue[index] if index < len(queue) else None
        positions[(c.src, c.dst)] = index + 1
        pairs.append((c, recv))
    return pairs


@dataclass
class ParsedPrv:
    """A ``.prv`` text read back: header plus per-type record tuples."""

    header: str
    n_ranks: int
    duration_ns: int
    states: list[tuple] = field(default_factory=list)
    events: list[tuple] = field(default_factory=list)
    comms: list[tuple] = field(default_factory=list)


def parse_prv_text(text: str) -> ParsedPrv:
    """Parse ``.prv`` text back into record tuples (for tests and tools)."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith("#Paraver"):
        raise TraceError("not a Paraver .prv text: missing #Paraver header")
    header = lines[0]
    # The date parenthetical contains colons; fields start after "):".
    fields = header.split("):", 1)[-1].split(":")
    try:
        duration_ns = int(fields[0].removesuffix("_ns"))
        n_ranks = int(fields[1].split("(")[1].rstrip(")"))
    except (IndexError, ValueError) as exc:
        raise TraceError(f"malformed .prv header: {header!r}") from exc
    parsed = ParsedPrv(header=header, n_ranks=n_ranks, duration_ns=duration_ns)
    buckets = {1: parsed.states, 2: parsed.events, 3: parsed.comms}
    for lineno, line in enumerate(lines[1:], start=2):
        if not line:
            continue
        parts = line.split(":")
        try:
            record_type = int(parts[0])
            bucket = buckets[record_type]
        except (ValueError, KeyError) as exc:
            raise TraceError(f"bad .prv record on line {lineno}: {line!r}") from exc
        bucket.append(tuple(int(p) for p in parts[1:]))
    return parsed


def chop_window(trace: Trace, t0: float, t1: float) -> Trace:
    """A sub-trace containing records overlapping [t0, t1], clipped.

    States are clipped to the window; comms/recvs are kept if they *start*
    inside it (the replay engine re-times them anyway).
    """
    if t1 <= t0:
        raise TraceError(f"empty window [{t0}, {t1}]")
    states = [
        type(s)(s.rank, s.state, max(s.start, t0), min(s.end, t1))
        for s in trace.states
        if s.end > t0 and s.start < t1
    ]
    comms = [c for c in trace.comms if t0 <= c.start < t1]
    recvs = [r for r in trace.recvs if t0 <= r.start < t1]
    markers = [m for m in trace.markers if t0 <= m.time < t1]
    return Trace(
        n_ranks=trace.n_ranks,
        states=states,
        comms=comms,
        recvs=recvs,
        markers=markers,
        t_start=t0,
        t_end=t1,
    )


def chop_iterations(trace: Trace, label: str = "iteration", rank: int = 0) -> list[Trace]:
    """Split into per-iteration windows between *rank*'s markers.

    The paper uses the whole trace as a single phase for hpl (no markers) —
    callers get that behaviour by simply not emitting markers, in which case
    this returns the full trace as one window.
    """
    times = sorted(m.time for m in trace.markers if m.label == label and m.rank == rank)
    if len(times) < 2:
        return [trace]
    return [chop_window(trace, t0, t1) for t0, t1 in zip(times[:-1], times[1:])]
