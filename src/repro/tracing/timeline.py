"""Paraver-style text timelines: one character row per rank.

Renders a :class:`~repro.tracing.events.Trace` as an ASCII Gantt chart:
``#`` CPU compute, ``g`` GPU kernel, ``c`` host<->device copy/sync, ``-``
communication (send-side), ``.`` idle/waiting.  A glance shows the load
imbalance and pipeline bubbles the scalability analysis quantifies.
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.tracing.events import Trace

#: Drawing priority (higher wins when states overlap a cell) and glyphs.
_GLYPHS = {"compute": "#", "gpu": "g", "copy": "c", "overlap": "o"}
_PRIORITY = {"compute": 3, "gpu": 4, "copy": 2, "overlap": 1}
_COMM_GLYPH = "-"


def render_timeline(trace: Trace, width: int = 80,
                    t0: float | None = None, t1: float | None = None) -> str:
    """Render *trace* (optionally a [t0, t1] window) as text rows."""
    if width < 8:
        raise TraceError("timeline width must be at least 8")
    start = trace.t_start if t0 is None else t0
    end = trace.t_end if t1 is None else t1
    if end <= start:
        raise TraceError(f"empty timeline window [{start}, {end}]")
    span = end - start

    def columns(s: float, e: float) -> range:
        lo = max(0, int((s - start) / span * width))
        hi = min(width, int((e - start) / span * width) + 1)
        return range(lo, hi)

    rows = [["."] * width for _ in range(trace.n_ranks)]
    priority = [[0] * width for _ in range(trace.n_ranks)]

    for comm in trace.comms:
        for col in columns(comm.start, comm.end):
            if priority[comm.src][col] < 1:
                rows[comm.src][col] = _COMM_GLYPH
                priority[comm.src][col] = 1
    for state in trace.states:
        glyph = _GLYPHS.get(state.state, "?")
        prio = _PRIORITY.get(state.state, 1)
        for col in columns(state.start, state.end):
            if priority[state.rank][col] < prio:
                rows[state.rank][col] = glyph
                priority[state.rank][col] = prio

    header = (
        f"t = {start:.3f}s .. {end:.3f}s   "
        f"(# compute, g gpu, c copy, - comm, . idle)"
    )
    body = "\n".join(
        f"r{rank:<3}|{''.join(row)}|" for rank, row in enumerate(rows)
    )
    return header + "\n" + body


def utilization_summary(trace: Trace) -> str:
    """Per-rank useful-time percentages under the timeline."""
    duration = trace.duration
    if duration <= 0:
        raise TraceError("trace has no duration")
    lines = [f"{'rank':<6}{'useful s':>10}{'useful %':>10}"]
    for rank in range(trace.n_ranks):
        useful = trace.compute_seconds(rank)
        lines.append(f"r{rank:<5}{useful:>10.3f}{100.0 * useful / duration:>10.1f}")
    return "\n".join(lines)
