"""Extrae-like tracing: states, communications, and phase markers.

A :class:`Tracer` is handed to a :class:`~repro.cluster.job.Job`; workloads
and the MPI layer record into it.  The finished :class:`Trace` feeds the
Paraver-style chopping (`repro.tracing.paraver`) and the DIMEMAS-style
replay (`repro.replay`).
"""

from repro.tracing.events import CommRecord, MarkerRecord, RecvRecord, StateRecord, Trace
from repro.tracing.tracer import Tracer
from repro.tracing.paraver import (
    ParsedPrv,
    chop_iterations,
    chop_window,
    parse_prv_text,
    to_pcf_text,
    to_prv_text,
    write_prv,
)
from repro.tracing.timeline import render_timeline, utilization_summary

__all__ = [
    "CommRecord",
    "MarkerRecord",
    "RecvRecord",
    "StateRecord",
    "Trace",
    "Tracer",
    "ParsedPrv",
    "chop_iterations",
    "chop_window",
    "parse_prv_text",
    "to_pcf_text",
    "to_prv_text",
    "write_prv",
    "render_timeline",
    "utilization_summary",
]
