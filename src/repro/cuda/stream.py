"""CUDA streams: per-stream serialization, cross-stream overlap."""

from __future__ import annotations

from repro.sim import Environment, Resource
from repro.sim.resources import Request


class Stream:
    """Work items on one stream execute in order; streams overlap freely.

    The copy engine and kernel engine are separate node resources, so a
    two-stream pipeline overlaps one stream's copies with the other's kernels
    — the latency-hiding pattern §II-B describes.
    """

    def __init__(self, env: Environment, name: str = "stream") -> None:
        self.env = env
        self.name = name
        self._order = Resource(env, capacity=1)

    def enter(self) -> Request:
        """Claim the stream's in-order slot; yield the returned request."""
        return self._order.request()

    def leave(self, request: Request) -> None:
        """Release the in-order slot claimed by :meth:`enter`."""
        self._order.release(request)

    def __repr__(self) -> str:
        return f"<Stream {self.name}>"
