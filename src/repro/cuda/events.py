"""nvprof-style profiling records and aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class KernelRecord:
    """One kernel launch as the profiler sees it."""

    name: str
    start: float
    end: float
    flops: float
    dram_bytes: float
    l2_utilization: float
    l2_read_throughput: float  # bytes/s during the kernel
    memory_stall_fraction: float
    # L2-level request traffic (0 when the launch bypassed the cache);
    # trailing with a default so positional construction stays valid.
    l2_bytes: float = 0.0

    @property
    def seconds(self) -> float:
        """Kernel duration."""
        return self.end - self.start


@dataclass(frozen=True)
class CopyRecord:
    """One host<->device copy."""

    kind: str  # "h2d" | "d2h" | "d2d" | "migration"
    start: float
    end: float
    nbytes: float

    @property
    def seconds(self) -> float:
        """Copy duration."""
        return self.end - self.start


@dataclass
class Profiler:
    """Collects kernel and copy records for one context."""

    kernels: list[KernelRecord] = field(default_factory=list)
    copies: list[CopyRecord] = field(default_factory=list)

    def record_kernel(self, record: KernelRecord) -> None:
        """Append a kernel record."""
        self.kernels.append(record)

    def record_copy(self, record: CopyRecord) -> None:
        """Append a copy record."""
        self.copies.append(record)

    # -- aggregates (time-weighted over kernels) -------------------------------------

    @property
    def gpu_busy_seconds(self) -> float:
        """Total kernel-execution time."""
        return sum(k.seconds for k in self.kernels)

    @property
    def copy_seconds(self) -> float:
        """Total copy time."""
        return sum(c.seconds for c in self.copies)

    @property
    def copy_bytes(self) -> float:
        """Total bytes moved by copies."""
        return sum(c.nbytes for c in self.copies)

    @property
    def total_flops(self) -> float:
        """Total FLOPs retired by kernels."""
        return sum(k.flops for k in self.kernels)

    @property
    def total_dram_bytes(self) -> float:
        """Total kernel DRAM traffic (operational-intensity denominator)."""
        return sum(k.dram_bytes for k in self.kernels)

    @property
    def total_l2_bytes(self) -> float:
        """Total kernel L2-level traffic (hierarchical roofline denominator)."""
        return sum(k.l2_bytes for k in self.kernels)

    def mean_l2_utilization(self) -> float:
        """Time-weighted mean L2 utilization across kernels."""
        busy = self.gpu_busy_seconds
        if busy == 0.0:
            return 0.0
        return sum(k.l2_utilization * k.seconds for k in self.kernels) / busy

    def mean_l2_read_throughput(self) -> float:
        """Time-weighted mean L2 read throughput (bytes/s)."""
        busy = self.gpu_busy_seconds
        if busy == 0.0:
            return 0.0
        return sum(k.l2_read_throughput * k.seconds for k in self.kernels) / busy

    def mean_memory_stall_fraction(self) -> float:
        """Time-weighted mean fraction of kernel time stalled on memory."""
        busy = self.gpu_busy_seconds
        if busy == 0.0:
            return 0.0
        return sum(k.memory_stall_fraction * k.seconds for k in self.kernels) / busy

    def reset(self) -> None:
        """Drop all records."""
        self.kernels.clear()
        self.copies.clear()
