"""Simulated CUDA runtime.

One :class:`CudaContext` per GPU-bearing node provides ``malloc`` /
``memcpy`` / ``launch`` with the paper's three memory-management models
(§II-B):

* **host & device** — separate address spaces, explicit ``cudaMemcpy``;
* **zero-copy** — device threads read host memory directly; on the TX1 this
  bypasses the cache hierarchy to keep coherence (the paper's Table III
  finding), collapsing L2 utilization and inflating memory stalls;
* **unified memory** — managed pool with transparent migration, performing
  like host & device while keeping the cache hierarchy live.

An nvprof-style :class:`Profiler` accumulates per-kernel metrics.
"""

from repro.cuda.events import CopyRecord, KernelRecord, Profiler
from repro.cuda.memory_models import MemoryModel, MemoryManager
from repro.cuda.runtime import Buffer, CudaContext, KernelSpec
from repro.cuda.stream import Stream

__all__ = [
    "Buffer",
    "CopyRecord",
    "CudaContext",
    "KernelRecord",
    "KernelSpec",
    "MemoryManager",
    "MemoryModel",
    "Profiler",
    "Stream",
]
