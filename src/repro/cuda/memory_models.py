"""The three CUDA memory-management models as one pluggable policy.

A :class:`MemoryManager` wraps a context with the model under test and
exposes the iteration-level protocol workloads use::

    manager = MemoryManager(ctx, MemoryModel.ZERO_COPY)
    buf = manager.allocate(nbytes)
    yield from manager.stage_input(buf)     # h2d copy / migration / nothing
    yield from manager.run(kernel)          # launch with the right caching
    yield from manager.stage_output(buf)    # d2h copy / migration / nothing

so a workload (the paper modifies *jacobi*) switches models without touching
its own structure — exactly how Table III was produced.
"""

from __future__ import annotations

import enum

from repro.cuda.runtime import Buffer, CudaContext, KernelSpec
from repro.errors import CudaError


class MemoryModel(enum.Enum):
    """The paper's three host/device memory-management models."""

    HOST_DEVICE = "host-device"
    ZERO_COPY = "zero-copy"
    UNIFIED = "unified"


class MemoryManager:
    """Applies one :class:`MemoryModel` to allocations, staging, and launches."""

    def __init__(self, context: CudaContext, model: MemoryModel) -> None:
        if not isinstance(model, MemoryModel):
            raise CudaError(f"expected a MemoryModel, got {model!r}")
        self.context = context
        self.model = model
        # Host-side shadow buffers for the explicit-copy model.
        self._shadows: dict[int, Buffer] = {}

    def allocate(self, nbytes: float) -> Buffer:
        """Allocate a working buffer appropriate for the model.

        Host & device allocates *both* address spaces (the conventional
        model's double allocation, which on a unified SoC wastes capacity).
        """
        ctx = self.context
        if self.model is MemoryModel.HOST_DEVICE:
            device = ctx.malloc(nbytes)
            self._shadows[device.buffer_id] = ctx.malloc_host(nbytes)
            return device
        if self.model is MemoryModel.ZERO_COPY:
            return ctx.host_alloc_mapped(nbytes)
        return ctx.malloc_managed(nbytes)

    def free(self, buf: Buffer) -> None:
        """Release a buffer (and its host shadow, if any)."""
        shadow = self._shadows.pop(buf.buffer_id, None)
        if shadow is not None:
            self.context.free(shadow)
        self.context.free(buf)

    def stage_input(self, buf: Buffer, nbytes: float | None = None):
        """Generator: make host data visible to the device before a kernel."""
        if self.model is MemoryModel.HOST_DEVICE:
            shadow = self._require_shadow(buf)
            yield from self.context.memcpy(buf, shadow, nbytes, kind="h2d")
        elif self.model is MemoryModel.UNIFIED:
            yield from self.context.migrate(buf, nbytes)
        else:  # zero-copy: the device reads host memory directly
            return

    def stage_output(self, buf: Buffer, nbytes: float | None = None):
        """Generator: make device results visible to the host after a kernel."""
        if self.model is MemoryModel.HOST_DEVICE:
            shadow = self._require_shadow(buf)
            yield from self.context.memcpy(shadow, buf, nbytes, kind="d2h")
        elif self.model is MemoryModel.UNIFIED:
            yield from self.context.migrate(buf, nbytes)
        else:
            return

    def run(self, kernel: KernelSpec, stream=None):
        """Generator: launch *kernel* with the model's caching behaviour."""
        bypass = self.model is MemoryModel.ZERO_COPY
        record = yield from self.context.launch(kernel, bypass_cache=bypass, stream=stream)
        return record

    def _require_shadow(self, buf: Buffer) -> Buffer:
        try:
            return self._shadows[buf.buffer_id]
        except KeyError:
            raise CudaError(
                f"{buf!r} was not allocated through this host-device manager"
            ) from None
