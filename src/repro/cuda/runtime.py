"""Device contexts, buffers, copies, and kernel launches."""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.cuda.events import CopyRecord, KernelRecord, Profiler
from repro.errors import CudaError
from repro.hardware.node import Node
from repro.sim import Resource
from repro.telemetry.instruments import SIZE_BUCKETS
from repro.telemetry.sink import NULL


@dataclass(frozen=True)
class KernelSpec:
    """Cost description of one kernel launch.

    ``flops`` and ``dram_bytes`` describe the launch's total work and its
    DRAM-visible traffic under normal caching (the GPU model handles the
    bypass case).
    """

    name: str
    flops: float
    dram_bytes: float
    precision: str = "double"
    #: Declared L2-level request traffic for workloads that know their reuse
    #: structure; ``None`` defers to the GPU model's miss-ratio estimate.
    l2_bytes: float | None = None

    def __post_init__(self) -> None:
        if self.flops < 0 or self.dram_bytes < 0:
            raise CudaError(f"{self.name}: flops/dram_bytes must be non-negative")
        if self.l2_bytes is not None and self.l2_bytes < 0:
            raise CudaError(f"{self.name}: l2_bytes must be non-negative")


_SPACES = ("host", "device", "managed", "mapped")


class Buffer:
    """A tracked allocation in one of the four address spaces."""

    _ids = itertools.count()

    def __init__(self, context: "CudaContext", nbytes: float, space: str) -> None:
        if space not in _SPACES:
            raise CudaError(f"unknown address space {space!r}")
        if nbytes <= 0:
            raise CudaError("allocation must be positive")
        self.context = context
        self.nbytes = float(nbytes)
        self.space = space
        self.buffer_id = next(self._ids)
        self.freed = False

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return f"<Buffer#{self.buffer_id} {self.space} {self.nbytes:.3e}B {state}>"


class CudaContext:
    """The CUDA runtime of one GPU-bearing node.

    ``pcie_bandwidth`` is set for discrete cards; on unified-memory SoCs the
    host<->device copy goes over the shared DRAM bus instead.
    """

    def __init__(
        self,
        node: Node,
        pcie_bandwidth: float | None = None,
        migration_overhead: float = 25e-6,
    ) -> None:
        self.node = node
        self.gpu = node.require_gpu()
        self.env = node.env
        self.pcie_bandwidth = pcie_bandwidth
        self.migration_overhead = migration_overhead
        self.profiler = Profiler()
        self._live_buffers: dict[int, Buffer] = {}
        assert node.gpu_engine is not None
        self._engine: Resource = node.gpu_engine
        self._telemetry = NULL
        self._track = f"cuda.node{node.node_id}"
        self._wire_instruments()

    def set_telemetry(self, telemetry) -> None:
        """Attach a telemetry sink recording kernel/copy spans and counters."""
        self._telemetry = telemetry if telemetry is not None else NULL
        self._wire_instruments()

    def _wire_instruments(self) -> None:
        tm = self._telemetry
        self._kernels_counter = tm.counter(
            "cuda_kernels_total", "kernel launches completed",
        )
        self._copies_counter = tm.counter(
            "cuda_copies_total", "explicit copies and UM migrations",
            labelnames=("kind",),
        )
        self._copy_bytes_counter = tm.counter(
            "cuda_copy_bytes_total", "bytes moved by copies and migrations",
            unit="bytes", labelnames=("kind",),
        )
        self._l2_bytes_counter = tm.counter(
            "cuda_l2_bytes_total", "kernel L2-level request traffic",
            unit="bytes",
        )
        self._kernel_seconds_histogram = tm.histogram(
            "cuda_kernel_seconds", "on-engine kernel execution time",
            unit="seconds",
        )
        self._copy_bytes_histogram = tm.histogram(
            "cuda_copy_bytes", "size of individual copies",
            unit="bytes", buckets=SIZE_BUCKETS,
        )

    # -- allocation -------------------------------------------------------------

    def _alloc(self, nbytes: float, space: str) -> Buffer:
        buf = Buffer(self, nbytes, space)
        self.node.dram.allocate(nbytes)
        self._live_buffers[buf.buffer_id] = buf
        return buf

    def malloc(self, nbytes: float) -> Buffer:
        """cudaMalloc: a device-space buffer."""
        return self._alloc(nbytes, "device")

    def malloc_host(self, nbytes: float) -> Buffer:
        """Pinned host allocation."""
        return self._alloc(nbytes, "host")

    def malloc_managed(self, nbytes: float) -> Buffer:
        """cudaMallocManaged: unified-memory pool."""
        return self._alloc(nbytes, "managed")

    def host_alloc_mapped(self, nbytes: float) -> Buffer:
        """cudaHostAlloc(..., cudaHostAllocMapped): zero-copy buffer."""
        return self._alloc(nbytes, "mapped")

    def free(self, buf: Buffer) -> None:
        """Release a buffer; double-free raises."""
        if buf.freed:
            raise CudaError(f"double free of {buf!r}")
        if buf.buffer_id not in self._live_buffers:
            raise CudaError(f"{buf!r} does not belong to this context")
        buf.freed = True
        del self._live_buffers[buf.buffer_id]
        self.node.dram.release(buf.nbytes)

    @property
    def live_bytes(self) -> float:
        """Bytes currently allocated through this context."""
        return sum(b.nbytes for b in self._live_buffers.values())

    # -- copies ------------------------------------------------------------------

    def _copy_seconds(self, nbytes: float) -> float:
        if self.pcie_bandwidth is not None:
            return nbytes / self.pcie_bandwidth
        return self.node.dram.copy_seconds(nbytes)

    def memcpy(self, dst: Buffer, src: Buffer, nbytes: float | None = None, kind: str | None = None):
        """Generator: cudaMemcpy between two buffers.

        ``kind`` is derived from the buffer spaces if not given
        (``h2d``/``d2h``/``d2d``).  Zero-copy (mapped) buffers need no copies
        by construction, so copying one is rejected as a programming error.
        """
        for buf in (dst, src):
            if buf.freed:
                raise CudaError(f"memcpy on freed buffer {buf!r}")
            if buf.space == "mapped":
                raise CudaError("memcpy on a zero-copy (mapped) buffer is meaningless")
        size = min(dst.nbytes, src.nbytes) if nbytes is None else float(nbytes)
        if size < 0 or size > min(dst.nbytes, src.nbytes):
            raise CudaError(f"memcpy size {size} exceeds buffer bounds")
        if kind is None:
            kind = {
                ("host", "device"): "d2h",
                ("device", "host"): "h2d",
                ("device", "device"): "d2d",
            }.get((dst.space, src.space), "h2d")

        start = self.env.now
        with self._telemetry.async_span(
            self._track, f"memcpy:{kind}", "cuda", nbytes=size,
        ):
            with self.node.copy_engine.request() as req:
                yield req
                yield self.env.timeout(self._copy_seconds(size))
        self.node.dram.record_copy_traffic(size)
        self._copies_counter.inc(kind=kind)
        self._copy_bytes_counter.inc(size, kind=kind)
        self._copy_bytes_histogram.observe(size)
        self.profiler.record_copy(CopyRecord(kind, start, self.env.now, size))

    def migrate(self, buf: Buffer, nbytes: float | None = None):
        """Generator: unified-memory driver migration of a managed buffer."""
        if buf.space != "managed":
            raise CudaError("migrate applies to managed buffers only")
        size = buf.nbytes if nbytes is None else float(nbytes)
        start = self.env.now
        with self._telemetry.async_span(
            self._track, "migration", "cuda", nbytes=size,
        ):
            with self.node.copy_engine.request() as req:
                yield req
                yield self.env.timeout(self.migration_overhead + self._copy_seconds(size))
        self.node.dram.record_copy_traffic(size)
        self._copies_counter.inc(kind="migration")
        self._copy_bytes_counter.inc(size, kind="migration")
        self._copy_bytes_histogram.observe(size)
        self.profiler.record_copy(CopyRecord("migration", start, self.env.now, size))

    # -- kernels -------------------------------------------------------------------

    def launch(self, kernel: KernelSpec, *, bypass_cache: bool = False, stream=None):
        """Generator: run *kernel* on the GPU engine.

        Holds the engine for the kernel duration (no MPS: kernels from
        different processes serialize), charges GPU power, records DRAM
        traffic, and appends a profiler record.  Pass ``stream`` to serialize
        against other work on the same :class:`~repro.cuda.stream.Stream`.
        """
        cost = self.gpu_cost(kernel, bypass_cache=bypass_cache)
        with self._telemetry.async_span(
            self._track, f"kernel:{kernel.name}", "cuda",
            flops=kernel.flops, dram_bytes=cost.dram_bytes,
            l2_bytes=cost.l2_bytes,
        ):
            stream_req = stream.enter() if stream is not None else None
            if stream_req is not None:
                yield stream_req
            with self._engine.request() as req:
                yield req
                start = self.env.now
                yield self.env.timeout(cost.seconds)
        if stream is not None:
            stream.leave(stream_req)
        self._kernels_counter.inc()
        self._l2_bytes_counter.inc(cost.l2_bytes)
        self._kernel_seconds_histogram.observe(cost.seconds)
        self.node.power.add_gpu_busy(cost.seconds, start=start)
        self.node.dram.record_gpu_traffic(cost.dram_bytes)
        record = KernelRecord(
            name=kernel.name,
            start=start,
            end=self.env.now,
            flops=kernel.flops,
            dram_bytes=cost.dram_bytes,
            l2_utilization=cost.l2_utilization,
            l2_read_throughput=cost.l2_read_throughput,
            memory_stall_fraction=cost.memory_stall_fraction,
            l2_bytes=cost.l2_bytes,
        )
        self.profiler.record_kernel(record)
        return record

    def gpu_cost(self, kernel: KernelSpec, *, bypass_cache: bool = False):
        """The GPU model's cost estimate for *kernel* (no simulated time)."""
        return self.gpu.kernel_cost(
            kernel.flops,
            kernel.dram_bytes,
            precision=kernel.precision,
            bypass_cache=bypass_cache,
            l2_bytes=kernel.l2_bytes,
        )
