"""Canonical run descriptions: :class:`RunSpec` and the code fingerprint.

A :class:`RunSpec` is the *normalized* identity of one measurement: the
workload name, its **fully resolved** constructor kwargs (defaults filled
in, enums collapsed to their values), the cluster shape
(system/nodes/network/ranks-per-node) with ignored dimensions
canonicalized away, the traced flag, and a fingerprint of the package
source.  Two calls that would produce bit-identical simulations normalize
to the same spec — this is what makes the result cache sound:

* ``run_workload("hpl")`` and the same call with every default passed
  explicitly produce **one** key, not two;
* ``system="thunderx"`` ignores ``nodes`` (the Cavium box is one server)
  and ``gtx980``/``thunderx`` ignore ``network``, so those dimensions are
  pinned to their effective values before keying;
* workload seeds are ordinary constructor kwargs (e.g. the CNN decode
  seed), so they participate in the key like any other parameter.

The digest deliberately excludes the code fingerprint — the persistent
store keeps one file per spec and *invalidates* it when the fingerprint
moves, rather than accumulating stale entries per source revision.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any

from repro.cluster.cluster import (
    Cluster,
    ClusterSpec,
    gtx980_cluster_spec,
    thunderx_cluster_spec,
    tx1_cluster_spec,
)
from repro.errors import ConfigurationError

#: Networks the cluster catalog knows how to build.
KNOWN_NETWORKS = ("1G", "10G")
#: Systems the cluster catalog knows how to build.
KNOWN_SYSTEMS = ("tx1", "gtx980", "thunderx")
#: The paper's §IV-A rank count on the Cavium ThunderX.
THUNDERX_RANKS = 64

_fingerprint: str | None = None


def code_fingerprint() -> str:
    """A short stable hash of the repro package source (plus its version).

    Any edit to any module under ``repro`` changes the fingerprint, which
    invalidates every persistent cache entry — the simulator is the
    "binary" whose outputs are being memoized.  Computed once per process.
    """
    global _fingerprint
    if _fingerprint is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        digest.update(getattr(repro, "__version__", "0").encode("utf-8"))
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _fingerprint = digest.hexdigest()[:16]
    return _fingerprint


def build_cluster_spec(system: str, nodes: int, network: str) -> ClusterSpec:
    """The :class:`ClusterSpec` a normalized spec describes."""
    if system == "tx1":
        return tx1_cluster_spec(nodes, network)
    if system == "gtx980":
        return gtx980_cluster_spec(nodes)
    if system == "thunderx":
        return thunderx_cluster_spec()
    raise ConfigurationError(
        f"unknown system {system!r}; known systems: {', '.join(KNOWN_SYSTEMS)}"
    )


def build_cluster(spec: "RunSpec") -> Cluster:
    """A fresh (un-simulated) cluster matching *spec*'s shape."""
    return Cluster(build_cluster_spec(spec.system, spec.nodes, spec.network))


def _constructor_parameters(cls: type) -> dict[str, Any]:
    """Every named constructor parameter over *cls*'s MRO, with defaults.

    Base-class defaults first, subclass overrides win — this resolves the
    ``**kwargs``-forwarding chains the workload hierarchy uses (a concrete
    solver forwards ``memory_model``/``gpudirect`` to its base).  Required
    parameters map to :data:`inspect.Parameter.empty`.
    """
    params: dict[str, Any] = {}
    for klass in reversed(cls.__mro__):
        init = klass.__dict__.get("__init__")
        if init is None:
            continue
        try:
            signature = inspect.signature(init)
        except (TypeError, ValueError):  # builtins without signatures
            continue
        for parameter in signature.parameters.values():
            if parameter.name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            params[parameter.name] = parameter.default
    return params


def _canonical_value(name: str, key: str, value: Any) -> Any:
    """*value* reduced to a hashable, JSON-stable form (or a taxonomy error).

    Accepts None, bools, ints, floats, strings, enums (collapsed to their
    ``.value``), and sequences of those (collapsed to tuples).  Everything
    else — sets, dicts, ndarrays, ad-hoc objects — is rejected with a
    :class:`ConfigurationError` instead of the bare ``TypeError`` the old
    tuple-of-items cache key raised on unhashable values.
    """
    if isinstance(value, Enum):
        return _canonical_value(name, key, value.value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(name, key, item) for item in value)
    raise ConfigurationError(
        f"workload {name!r}: parameter {key}={value!r} has uncacheable type "
        f"{type(value).__name__} (use None, bool, int, float, str, or "
        f"sequences of those)"
    )


def _resolve_workload_kwargs(
    name: str, kwargs: dict[str, Any]
) -> tuple[tuple[tuple[str, Any], ...], bool]:
    """(canonical resolved kwargs, revivable) for workload *name*.

    Resolution fills in every constructor default so omitted-vs-explicit
    defaults key identically; unknown parameter names raise the taxonomy
    error with the known choices.  ``revivable`` is False when a kwarg
    carried an enum (its canonical string cannot be fed back to the
    constructor), which confines such runs to the in-process cache.
    """
    from repro.workloads import GPGPU_FACTORIES, NPB_SPECS

    if name in NPB_SPECS:
        # The NPB codes take no constructor parameters; silently dropping
        # kwargs (the old factory behaviour) aliased distinct-looking keys
        # onto identical runs.
        if kwargs:
            raise ConfigurationError(
                f"workload {name!r} accepts no parameters; "
                f"got {', '.join(sorted(kwargs))}"
            )
        return (), True
    cls, preset = GPGPU_FACTORIES[name]
    parameters = _constructor_parameters(cls)
    fixed = sorted(set(kwargs) & set(preset))
    if fixed:
        raise ConfigurationError(
            f"workload {name!r} fixes parameter(s) {', '.join(fixed)}; "
            f"they cannot be overridden"
        )
    unknown = sorted(set(kwargs) - set(parameters))
    if unknown:
        known = sorted(set(parameters) - set(preset))
        raise ConfigurationError(
            f"unknown parameter(s) {', '.join(unknown)} for workload "
            f"{name!r}; known parameters: {', '.join(known)}"
        )
    revivable = not any(isinstance(v, Enum) for v in kwargs.values())
    resolved: dict[str, Any] = {}
    for key in sorted(parameters):
        value = kwargs.get(key, preset.get(key, parameters[key]))
        if value is inspect.Parameter.empty:
            raise ConfigurationError(
                f"workload {name!r} requires parameter {key!r}"
            )
        resolved[key] = _canonical_value(name, key, value)
    return tuple(sorted(resolved.items())), revivable


def build_workload(name: str, kwargs: dict[str, Any]):
    """``make_workload`` with constructor failures mapped to the taxonomy.

    A mixed-type value that survives canonicalization (say ``n=[1, 2]``)
    can still blow up inside a constructor comparison; surface that as a
    :class:`ConfigurationError` rather than a bare ``TypeError``.
    """
    from repro.workloads import make_workload

    try:
        return make_workload(name, **kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid parameters for workload {name!r}: {exc}"
        ) from exc


@dataclass(frozen=True)
class RunSpec:
    """The canonical, hashable description of one measurement run."""

    name: str
    nodes: int
    network: str
    system: str
    ranks_per_node: int
    traced: bool
    #: Fully resolved constructor kwargs, sorted, canonical values.
    workload_kwargs: tuple[tuple[str, Any], ...]
    #: Source fingerprint the persistent store validates against.
    fingerprint: str = field(default="", compare=False)
    #: False when the kwargs cannot be fed back to the constructor (enums);
    #: such specs stay in the in-process cache and out of campaigns.
    revivable: bool = field(default=True, compare=False)

    @classmethod
    def normalize(
        cls,
        name: str,
        nodes: int = 16,
        network: str = "10G",
        system: str = "tx1",
        ranks_per_node: int | None = None,
        traced: bool = False,
        **workload_kwargs: Any,
    ) -> "RunSpec":
        """Validate and canonicalize one ``run_workload``-shaped request."""
        from repro.workloads import ALL_NAMES

        if name not in ALL_NAMES:
            raise ConfigurationError(
                f"unknown workload {name!r}; known workloads: "
                f"{', '.join(sorted(ALL_NAMES))}"
            )
        if system not in KNOWN_SYSTEMS:
            raise ConfigurationError(
                f"unknown system {system!r}; known systems: "
                f"{', '.join(KNOWN_SYSTEMS)}"
            )
        if network not in KNOWN_NETWORKS:
            raise ConfigurationError(
                f"unknown network {network!r}; known networks: "
                f"{', '.join(KNOWN_NETWORKS)}"
            )
        if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
            raise ConfigurationError(
                f"nodes must be a positive integer, got {nodes!r}"
            )
        if ranks_per_node is not None and (
            not isinstance(ranks_per_node, int)
            or isinstance(ranks_per_node, bool)
            or ranks_per_node < 1
        ):
            raise ConfigurationError(
                f"ranks_per_node must be a positive integer or None, "
                f"got {ranks_per_node!r}"
            )
        resolved, revivable = _resolve_workload_kwargs(name, workload_kwargs)
        workload = build_workload(name, workload_kwargs)
        if system == "thunderx":
            # The Cavium box is one server: `nodes` never reaches the
            # cluster builder, and the switch is fixed at 10 GbE.  Pinning
            # both stops one identical run caching under many keys.
            nodes = 1
            network = "10G"
            rpn = ranks_per_node or THUNDERX_RANKS
        else:
            if system == "gtx980":
                network = "10G"  # the discrete-GPU hosts are always 10 GbE
            rpn = ranks_per_node or workload.default_ranks_per_node
        return cls(
            name=name,
            nodes=nodes,
            network=network,
            system=system,
            ranks_per_node=rpn,
            traced=bool(traced),
            workload_kwargs=resolved,
            fingerprint=code_fingerprint(),
            revivable=revivable,
        )

    # -- identity --------------------------------------------------------------

    @property
    def key(self) -> tuple:
        """The in-process cache key (fingerprint-free: same process, same code)."""
        return (
            self.name, self.nodes, self.network, self.system,
            self.ranks_per_node, self.traced, self.workload_kwargs,
        )

    @property
    def sort_key(self) -> tuple:
        """Deterministic campaign ordering (never completion order)."""
        return (
            self.name, self.system, self.nodes, self.network,
            self.ranks_per_node, self.traced,
            tuple((k, repr(v)) for k, v in self.workload_kwargs),
        )

    def canonical_dict(self) -> dict[str, Any]:
        """The JSON-stable form the digest is computed over."""
        return {
            "name": self.name,
            "nodes": self.nodes,
            "network": self.network,
            "system": self.system,
            "ranks_per_node": self.ranks_per_node,
            "traced": self.traced,
            "workload_kwargs": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in self.workload_kwargs
            },
        }

    @property
    def digest(self) -> str:
        """Content address of this spec in the persistent store."""
        canonical = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]

    @property
    def label(self) -> str:
        """Short human-readable identity for tables and logs."""
        return f"{self.name}/{self.system}x{self.nodes}/{self.network}"

    def constructor_kwargs(self) -> dict[str, Any]:
        """Kwargs to rebuild the workload (revivable specs only)."""
        if not self.revivable:
            raise ConfigurationError(
                f"spec {self.label} carries non-revivable parameters and "
                f"cannot be rebuilt from its canonical form"
            )
        return {key: value for key, value in self.workload_kwargs}

    # -- wire form (campaign workers) ------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe form that round-trips through :meth:`from_dict`."""
        document = self.canonical_dict()
        document["fingerprint"] = self.fingerprint
        document["revivable"] = self.revivable
        return document

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "RunSpec":
        """Rebuild a spec shipped by :meth:`to_dict` (digest-preserving)."""
        kwargs = document.get("workload_kwargs", {})
        try:
            return cls._from_dict_checked(document, kwargs)
        except KeyError as exc:
            raise ConfigurationError(
                f"run spec document is missing required key {exc.args[0]!r}"
            ) from exc

    @classmethod
    def _from_dict_checked(
        cls, document: dict[str, Any], kwargs: dict[str, Any]
    ) -> "RunSpec":
        return cls(
            name=document["name"],
            nodes=document["nodes"],
            network=document["network"],
            system=document["system"],
            ranks_per_node=document["ranks_per_node"],
            traced=document["traced"],
            workload_kwargs=tuple(sorted(
                (key, tuple(value) if isinstance(value, list) else value)
                for key, value in kwargs.items()
            )),
            fingerprint=document.get("fingerprint", ""),
            revivable=document.get("revivable", True),
        )
