"""Campaign execution: shard a grid of RunSpecs across worker processes.

A *campaign* is an ordered, deduplicated list of
:class:`~repro.campaign.spec.RunSpec`; :func:`run_campaign` executes it —
warm specs straight from the persistent store, cold specs handed to the
:class:`~repro.campaign.supervisor.CampaignSupervisor`, which fans them
over a ``ProcessPoolExecutor`` (or runs serially with ``jobs=1``) with
retries, worker-crash recovery, hung-task timeouts, and poison-spec
quarantine — and merges results **by spec identity, never by completion
order**, so the summary table is byte-identical whatever the worker
interleaving (or fault history: a transient crash retried to success
produces the same row as a clean run).

Campaign-level telemetry (cache hits/misses, runs executed, retries,
quarantines, lost workers, worker utilization) is recorded on a standard
:class:`~repro.telemetry.instruments.Registry` so the counters export
through the existing Prometheus-style writer.
"""

from __future__ import annotations

import functools
import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.campaign.chaos import ChaosSchedule, corrupt_store_entry
from repro.campaign.serialize import (
    UncacheableRunError,
    run_to_payload,
    summarize_payload,
    summarize_run,
)
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore, default_store
from repro.campaign.supervisor import (
    COMPLETED_OUTCOMES,
    OUTCOME_OK,
    CampaignJournal,
    CampaignSupervisor,
    RetryPolicy,
    SpecRecord,
    record_from_journal,
)
from repro.errors import ConfigurationError, SpecQuarantinedError
from repro.telemetry.instruments import Registry

#: Sentinel: "use the process default store" (None means "no store").
_DEFAULT_STORE = object()


@dataclass(frozen=True)
class CampaignRow:
    """One merged campaign result: spec identity plus summary metrics."""

    workload: str
    system: str
    nodes: int
    network: str
    ranks_per_node: int
    runtime_seconds: float
    gflops: float
    mflops_per_watt: float
    energy_joules: float
    network_bytes: float
    completed: bool
    #: True when this row came from the persistent store (no simulation).
    cached: bool
    #: Supervisor taxonomy: ok / retried / quarantined / lost-worker.
    outcome: str = "ok"
    #: Execution attempts consumed (1 for a clean first-try run).
    attempts: int = 1
    #: Last error text for quarantined / lost-worker rows.
    error: str | None = None
    #: Hierarchical-roofline inputs (zero for CPU-only / failed rows).
    gpu_flops: float = 0.0
    gpu_dram_bytes: float = 0.0
    gpu_l2_bytes: float = 0.0
    #: Binding bandwidth roof (l2 / dram / network); None when the row has
    #: no GPGPU measurements to place.
    binding_level: str | None = None
    #: Static fast-path eligibility of this spec's topology (recorded for
    #: every row, including cached and failed ones — it is a pure function
    #: of the spec, not of what actually ran).
    fast_path_eligible: bool = False

    @property
    def operational_intensity(self) -> float:
        """DRAM-level OI (inf when the run moved no DRAM bytes)."""
        if self.gpu_dram_bytes <= 0:
            return math.inf
        return self.gpu_flops / self.gpu_dram_bytes

    @property
    def l2_intensity(self) -> float:
        """L2-level OI (inf when the run moved no L2 bytes)."""
        if self.gpu_l2_bytes <= 0:
            return math.inf
        return self.gpu_flops / self.gpu_l2_bytes

    @property
    def network_intensity(self) -> float:
        """NI = FLOPs per network byte (inf for network-silent runs)."""
        if self.network_bytes <= 0:
            return math.inf
        return self.gpu_flops / self.network_bytes


@dataclass
class CampaignResult:
    """Everything :func:`run_campaign` measured, deterministically ordered."""

    rows: list[CampaignRow]
    cache_hits: int
    cache_misses: int
    jobs: int
    workers_used: int
    registry: Registry
    #: Failed attempts that were retried (events, not specs).
    retried: int = 0
    #: Specs that exhausted their retry budget on in-worker errors.
    quarantined: int = 0
    #: Attempts lost to worker death or the task timeout.
    lost_workers: int = 0
    #: Process pools torn down and rebuilt (crashes + hangs).
    pool_rebuilds: int = 0
    #: Tasks culled by the per-task timeout watchdog.
    timeouts: int = 0
    #: Specs replayed from the campaign journal (``--resume``).
    resumed: int = 0
    #: Corrupt store entries detected, deleted, and re-run.
    store_repairs: int = 0
    #: The journal the campaign appended to (None when storeless).
    journal: Any = field(default=None, repr=False)

    @property
    def runs(self) -> int:
        """Number of distinct specs in the campaign."""
        return len(self.rows)

    @property
    def failed_rows(self) -> list[CampaignRow]:
        """Rows that ended quarantined / lost-worker (no measurements)."""
        return [row for row in self.rows if not row.completed]

    def raise_for_failures(self) -> None:
        """Strict mode: raise :class:`SpecQuarantinedError` on any failure.

        ``run_campaign`` itself never raises for quarantined specs — the
        campaign *completes* and names them.  Callers that need
        all-or-nothing semantics opt in here.
        """
        failed = self.failed_rows
        if failed:
            listing = "; ".join(
                f"{row.workload}/{row.system}x{row.nodes}/{row.network} "
                f"({row.outcome} after {row.attempts} attempts: {row.error})"
                for row in failed
            )
            raise SpecQuarantinedError(
                f"{len(failed)} of {len(self.rows)} specs did not "
                f"complete: {listing}"
            )


def build_campaign(
    workloads: Sequence[str],
    nodes: Sequence[int] = (4,),
    networks: Sequence[str] = ("10G",),
    system: str = "tx1",
    ranks_per_node: int | None = None,
    workload_kwargs: dict[str, dict[str, Any]] | None = None,
) -> list[RunSpec]:
    """The workload x nodes x network grid as normalized, deduped specs.

    Canonicalization can fold grid points together (every ``thunderx``
    point collapses onto one server, for instance); duplicates are dropped
    keeping first occurrence, so each simulation runs once.
    """
    if not workloads:
        raise ConfigurationError("a campaign needs at least one workload")
    kwargs_map = workload_kwargs or {}
    unknown = sorted(set(kwargs_map) - set(workloads))
    if unknown:
        raise ConfigurationError(
            f"workload_kwargs for {', '.join(unknown)} do not match any "
            f"campaign workload"
        )
    specs: list[RunSpec] = []
    seen: set[tuple] = set()
    for name in workloads:
        for node_count in nodes:
            for network in networks:
                spec = RunSpec.normalize(
                    name,
                    nodes=node_count,
                    network=network,
                    system=system,
                    ranks_per_node=ranks_per_node,
                    **kwargs_map.get(name, {}),
                )
                if spec.key not in seen:
                    seen.add(spec.key)
                    specs.append(spec)
    return specs


def _require_type(
    path: Path, key: str, value: Any, kinds: tuple[type, ...], label: str
) -> None:
    """Up-front campaign-file type validation naming the offending key.

    (Historically a ``"nodes": 4`` scalar or a string ``ranks_per_node``
    sailed through here and failed much later as a bare ``TypeError``
    deep inside normalization.)
    """
    if isinstance(value, bool) or not isinstance(value, kinds):
        raise ConfigurationError(
            f"campaign file {path}: key {key!r} must be {label}, "
            f"got {type(value).__name__} ({value!r})"
        )


def _require_list(
    path: Path, key: str, value: Any, item_kinds: tuple[type, ...], label: str
) -> None:
    _require_type(path, key, value, (list,), f"a list of {label}")
    for item in value:
        if isinstance(item, bool) or not isinstance(item, item_kinds):
            raise ConfigurationError(
                f"campaign file {path}: key {key!r} must hold {label}, "
                f"got {type(item).__name__} ({item!r})"
            )


def load_campaign_file(path: str | Path) -> list[RunSpec]:
    """Parse a JSON campaign file into specs.

    Schema (all keys except ``workloads`` optional)::

        {
          "workloads": ["jacobi", "cg"],
          "nodes": [2, 4],
          "networks": ["1G", "10G"],
          "system": "tx1",
          "ranks_per_node": null,
          "workload_kwargs": {"jacobi": {"n": 1024, "iterations": 8}}
        }

    Wrong-typed values (``"nodes": 4``, a string ``ranks_per_node``) are
    rejected here with a :class:`ConfigurationError` naming the key,
    instead of surfacing later as a bare ``TypeError`` mid-normalization.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"campaign file {path} does not exist")
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"campaign file {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise ConfigurationError(f"campaign file {path} must hold a JSON object")
    known = {
        "workloads", "nodes", "networks", "system", "ranks_per_node",
        "workload_kwargs",
    }
    unknown = sorted(set(document) - known)
    if unknown:
        raise ConfigurationError(
            f"campaign file {path}: unknown key(s) {', '.join(unknown)}; "
            f"known keys: {', '.join(sorted(known))}"
        )
    workloads = document.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise ConfigurationError(
            f"campaign file {path} needs a non-empty 'workloads' list"
        )
    _require_list(path, "workloads", workloads, (str,), "workload name strings")
    nodes = document.get("nodes", [4])
    _require_list(path, "nodes", nodes, (int,), "integer node counts")
    networks = document.get("networks", ["10G"])
    _require_list(path, "networks", networks, (str,), "network name strings")
    system = document.get("system", "tx1")
    _require_type(path, "system", system, (str,), "a system name string")
    ranks_per_node = document.get("ranks_per_node")
    if ranks_per_node is not None:
        _require_type(
            path, "ranks_per_node", ranks_per_node, (int,),
            "an integer (or null)",
        )
    workload_kwargs = document.get("workload_kwargs")
    if workload_kwargs is not None:
        _require_type(
            path, "workload_kwargs", workload_kwargs, (dict,),
            "an object of per-workload parameter objects",
        )
        for name, kwargs in workload_kwargs.items():
            _require_type(
                path, f"workload_kwargs.{name}", kwargs, (dict,),
                "a parameter object",
            )
    return build_campaign(
        workloads,
        nodes=nodes,
        networks=networks,
        system=system,
        ranks_per_node=ranks_per_node,
        workload_kwargs=workload_kwargs,
    )


def execute_spec(spec: RunSpec, store: ResultStore | None) -> dict[str, Any]:
    """Simulate one cold spec, publish it, and return its summary row.

    Shared by the serial path and the pool workers (via
    :mod:`repro.campaign.supervisor`).
    """
    from repro.bench.runner import run_spec

    run = run_spec(spec, use_cache=False)
    try:
        payload = run_to_payload(run)
    except UncacheableRunError:
        return summarize_run(run)
    if store is not None:
        store.put("run", spec.digest, spec.fingerprint, payload)
    return summarize_payload(payload)


def _binding_for(spec: RunSpec, summary: dict[str, Any]) -> str | None:
    """The hierarchical binding level of one summary row (None if unplaceable).

    Pure arithmetic over the summary's byte totals plus the spec-rebuilt
    cluster's ceilings, so cold, warm, and journal-replayed rows all land
    on the same answer.  Rows from journals written before the summaries
    carried GPU byte totals simply come back unplaced.
    """
    from repro.campaign.spec import build_cluster
    from repro.core import (
        DRAM_LEVEL,
        L2_LEVEL,
        hierarchical_roofline_for_cluster,
    )
    from repro.errors import AnalysisError

    flops = summary.get("gpu_flops", 0.0)
    dram = summary.get("gpu_dram_bytes", 0.0)
    l2 = summary.get("gpu_l2_bytes", 0.0)
    if flops <= 0 or dram <= 0 or l2 <= 0:
        return None
    try:
        model = hierarchical_roofline_for_cluster(build_cluster(spec))
    except AnalysisError:
        return None
    net_bytes = summary.get("network_bytes", 0.0)
    network_intensity = flops / net_bytes if net_bytes > 0 else math.inf
    return model.binding_level(
        {L2_LEVEL: flops / l2, DRAM_LEVEL: flops / dram}, network_intensity
    )


# Eligibility is a pure function of the spec's topology; memoized so a
# campaign touching the same shape many times builds the throwaway
# cluster once (RunSpec is frozen, hence hashable).
@functools.lru_cache(maxsize=None)
def _fast_path_eligible(spec: RunSpec) -> bool:
    from repro.fastpath import decide_spec

    return decide_spec(spec).eligible


def _merge_row(
    spec: RunSpec, summary: dict[str, Any], cached: bool,
    outcome: str = "ok", attempts: int = 1, error: str | None = None,
) -> CampaignRow:
    return CampaignRow(
        workload=spec.name,
        system=spec.system,
        nodes=spec.nodes,
        network=spec.network,
        ranks_per_node=spec.ranks_per_node,
        runtime_seconds=summary["runtime_seconds"],
        gflops=summary["gflops"],
        mflops_per_watt=summary["mflops_per_watt"],
        energy_joules=summary["energy_joules"],
        network_bytes=summary["network_bytes"],
        completed=summary["completed"],
        cached=cached,
        outcome=outcome,
        attempts=attempts,
        error=error,
        gpu_flops=summary.get("gpu_flops", 0.0),
        gpu_dram_bytes=summary.get("gpu_dram_bytes", 0.0),
        gpu_l2_bytes=summary.get("gpu_l2_bytes", 0.0),
        binding_level=_binding_for(spec, summary),
        fast_path_eligible=_fast_path_eligible(spec),
    )


def _failure_row(spec: RunSpec, record: SpecRecord) -> CampaignRow:
    """The ``completed=False`` row a quarantined spec contributes."""
    return CampaignRow(
        workload=spec.name,
        system=spec.system,
        nodes=spec.nodes,
        network=spec.network,
        ranks_per_node=spec.ranks_per_node,
        runtime_seconds=0.0,
        gflops=0.0,
        mflops_per_watt=0.0,
        energy_joules=0.0,
        network_bytes=0.0,
        completed=False,
        cached=record.cached,
        outcome=record.outcome,
        attempts=record.attempts,
        error=record.error,
        fast_path_eligible=_fast_path_eligible(spec),
    )


def _row_from_record(spec: RunSpec, record: SpecRecord) -> CampaignRow:
    if record.row is not None and record.outcome in COMPLETED_OUTCOMES:
        return _merge_row(
            spec, record.row, record.cached,
            outcome=record.outcome, attempts=record.attempts,
            error=record.error,
        )
    return _failure_row(spec, record)


def run_campaign(
    specs: Iterable[RunSpec],
    jobs: int = 1,
    store: ResultStore | None = _DEFAULT_STORE,  # type: ignore[assignment]
    retries: int = 2,
    task_timeout: float | None = None,
    resume: bool = False,
    chaos: ChaosSchedule | None = None,
    retry_policy: RetryPolicy | None = None,
    sleep: Any = None,
    host: Any = None,
    progress: Any = None,
) -> CampaignResult:
    """Execute *specs* under supervision, warm-starting from *store*.

    ``store`` defaults to the process-wide persistent store (pass ``None``
    to run storeless).  With ``jobs > 1`` cold specs are sharded across a
    process pool; results always merge in spec order.  Non-revivable specs
    (enum-valued kwargs) cannot cross a process boundary and are executed
    in-process regardless of *jobs*.

    Supervision: failed attempts are retried up to *retries* times with
    seeded exponential backoff; a spec that keeps failing is quarantined
    (the campaign completes with a ``completed=False`` row naming it);
    worker crashes rebuild the pool and resubmit only the lost specs;
    *task_timeout* culls hung workers.  With a store attached, terminal
    outcomes are journaled under ``<store>/campaigns/`` and
    ``resume=True`` replays a prior interrupted run, re-executing only
    undecided specs.  *chaos* injects a deterministic fault schedule (see
    :mod:`repro.campaign.chaos`).

    Host observability (both purely advisory — attach either and every
    table, cache entry, and journal row stays byte-identical apart from
    the extra ``host`` journal field): *host* is a
    :class:`repro.hostprof.CampaignHostRecorder` collecting per-spec
    wall/queue-wait/worker timings, surfaced as ``campaign_host_*``
    registry metrics; *progress* is a callable fired with each terminal
    :class:`SpecRecord` as it is decided (the ``--progress`` heartbeat).
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    policy = retry_policy or RetryPolicy(retries=retries)
    if store is _DEFAULT_STORE:
        store = default_store()
    if resume and store is None:
        raise ConfigurationError(
            "--resume needs the persistent result store (it replays the "
            "campaign journal kept there); do not combine it with "
            "--no-cache / REPRO_DISK_CACHE=0"
        )
    ordered: list[RunSpec] = []
    seen: set[tuple] = set()
    for spec in specs:
        if spec.key not in seen:
            seen.add(spec.key)
            ordered.append(spec)
    if not ordered:
        raise ConfigurationError("a campaign needs at least one run spec")

    repairs_before = store.corrupt_repaired if store is not None else 0
    if chaos is not None and store is not None:
        for digest in chaos.corrupt:
            corrupt_store_entry(store, "run", digest)

    journal = None
    replayed: dict[str, dict[str, Any]] = {}
    if store is not None:
        journal = CampaignJournal.for_campaign(store.root, ordered)
        replayed = journal.begin(ordered, resume=resume)

    rows: dict[str, CampaignRow] = {}
    pending: list[RunSpec] = []
    hits = 0
    resumed = 0
    for spec in ordered:
        entry = replayed.get(spec.digest)
        if entry is not None:
            record = record_from_journal(spec, entry)
            rows[spec.digest] = _row_from_record(spec, record)
            resumed += 1
            if progress is not None:
                progress(record)
            continue
        payload = (
            store.get("run", spec.digest, spec.fingerprint)
            if store is not None else None
        )
        if payload is not None:
            row = summarize_payload(payload)
            rows[spec.digest] = _merge_row(spec, row, True)
            hits += 1
            record = SpecRecord(
                spec=spec, outcome=OUTCOME_OK, attempts=1,
                row=row, cached=True,
            )
            if journal is not None:
                journal.record(record)
            if progress is not None:
                progress(record)
        else:
            pending.append(spec)

    supervisor = CampaignSupervisor(
        pending,
        jobs=jobs,
        store=store,
        policy=policy,
        task_timeout=task_timeout,
        chaos=chaos,
        journal=journal,
        sleep=sleep,
        host=host,
        progress=progress,
    )
    records = supervisor.run()
    for digest, record in records.items():
        rows[digest] = _row_from_record(record.spec, record)

    misses = len(pending)
    repairs = (
        store.corrupt_repaired - repairs_before if store is not None else 0
    )
    registry = Registry()
    registry.counter(
        "campaign_cache_hits_total",
        "campaign runs served from the persistent result store",
    ).inc(hits)
    registry.counter(
        "campaign_cache_misses_total",
        "campaign runs that had to simulate",
    ).inc(misses)
    registry.counter(
        "campaign_runs_total", "distinct run specs in the campaign",
    ).inc(len(ordered))
    registry.counter(
        "campaign_retries_total",
        "failed attempts retried under the supervisor's backoff policy",
    ).inc(supervisor.counters["retries"])
    registry.counter(
        "campaign_quarantined_total",
        "poison specs quarantined after exhausting their retry budget",
    ).inc(supervisor.counters["quarantined"])
    registry.counter(
        "campaign_lost_workers_total",
        "attempts lost to worker death or the task timeout",
    ).inc(supervisor.counters["lost_workers"])
    registry.counter(
        "campaign_pool_rebuilds_total",
        "worker pools torn down and rebuilt after crashes or hangs",
    ).inc(supervisor.counters["pool_rebuilds"])
    registry.counter(
        "campaign_task_timeouts_total",
        "tasks culled by the per-task timeout watchdog",
    ).inc(supervisor.counters["timeouts"])
    registry.counter(
        "campaign_resumed_total",
        "specs replayed from the campaign journal instead of re-running",
    ).inc(resumed)
    registry.counter(
        "campaign_store_repairs_total",
        "corrupt store entries detected, deleted, and re-run",
    ).inc(repairs)
    registry.gauge(
        "campaign_workers_configured", "worker processes requested (--jobs)",
    ).set(jobs)
    registry.gauge(
        "campaign_workers_used", "worker processes that executed >= 1 run",
    ).set(len(supervisor.pids))
    if host is not None:
        host.register_metrics(registry)
    merged = [rows[spec.digest] for spec in ordered]
    registry.gauge(
        "campaign_fastpath_eligible_specs",
        "specs whose topology admits the analytical fast-path engine",
    ).set(sum(1 for row in merged if row.fast_path_eligible))
    intensity_gauge = registry.gauge(
        "campaign_roofline_intensity",
        "per-run measured intensity against each bandwidth roof",
        unit="flop_per_byte",
        labelnames=("run", "level"),
    )
    binding_gauge = registry.gauge(
        "campaign_roofline_binding",
        "1 on the bandwidth roof that binds each run, 0 elsewhere",
        labelnames=("run", "level"),
    )
    for row in merged:
        if row.binding_level is None:
            continue
        run_label = f"{row.workload}/{row.system}x{row.nodes}/{row.network}"
        for level, intensity in (
            ("l2", row.l2_intensity),
            ("dram", row.operational_intensity),
            ("network", row.network_intensity),
        ):
            if math.isfinite(intensity):
                intensity_gauge.set(intensity, run=run_label, level=level)
            binding_gauge.set(
                1.0 if level == row.binding_level else 0.0,
                run=run_label, level=level,
            )
    return CampaignResult(
        rows=merged,
        cache_hits=hits,
        cache_misses=misses,
        jobs=jobs,
        workers_used=len(supervisor.pids),
        registry=registry,
        retried=supervisor.counters["retries"],
        quarantined=supervisor.counters["quarantined"],
        lost_workers=supervisor.counters["lost_workers"],
        pool_rebuilds=supervisor.counters["pool_rebuilds"],
        timeouts=supervisor.counters["timeouts"],
        resumed=resumed,
        store_repairs=repairs,
        journal=journal,
    )


def format_campaign_table(result: CampaignResult) -> str:
    """The deterministic summary table (fixed widths, fixed float formats).

    Deliberately excludes cache provenance (that lives in
    :func:`format_campaign_stats`): the table is byte-identical whether
    rows came from workers, the serial path, a warm store, a resumed
    journal — or a fault-injected run whose transient failures all
    retried to success.
    """
    header = (
        f"{'workload':<12} {'system':<9} {'nodes':>5} {'net':>4} {'rpn':>4} "
        f"{'runtime[s]':>14} {'GFLOPS':>10} {'MFLOPS/W':>10} "
        f"{'energy[J]':>14} {'ok':>3}"
    )
    lines = [header, "-" * len(header)]
    for row in result.rows:
        lines.append(
            f"{row.workload:<12} {row.system:<9} {row.nodes:>5} "
            f"{row.network:>4} {row.ranks_per_node:>4} "
            f"{row.runtime_seconds:>14.6f} {row.gflops:>10.3f} "
            f"{row.mflops_per_watt:>10.1f} {row.energy_joules:>14.2f} "
            f"{'yes' if row.completed else 'NO':>3}"
        )
    return "\n".join(lines)


def format_campaign_stats(result: CampaignResult) -> str:
    """The (cache-state-dependent) counter summary printed after the table."""
    lines = [
        f"cache: {result.cache_hits} hits, {result.cache_misses} misses",
        f"workers: {result.workers_used} used of {result.jobs} requested",
    ]
    recovered = (
        result.retried + result.quarantined + result.lost_workers
        + result.pool_rebuilds + result.timeouts
    )
    if recovered:
        lines.append(
            f"recovery: {result.retried} retried, "
            f"{result.quarantined} quarantined, "
            f"{result.lost_workers} lost workers, "
            f"{result.timeouts} timeouts, "
            f"{result.pool_rebuilds} pool rebuilds"
        )
    if result.resumed:
        lines.append(f"resumed: {result.resumed} specs from the journal")
    if result.store_repairs:
        lines.append(
            f"store: {result.store_repairs} corrupt entries repaired"
        )
    eligible = sum(1 for row in result.rows if row.fast_path_eligible)
    lines.append(
        f"fastpath: {eligible} of {len(result.rows)} specs eligible "
        f"for the analytical engine"
    )
    for row in result.rows:
        if row.binding_level is None:
            continue
        lines.append(
            f"roofline: {row.workload}/{row.system}x{row.nodes}/{row.network} "
            f"binds {row.binding_level} "
            f"(OI_l2 {_fmt_intensity(row.l2_intensity)}, "
            f"OI_dram {_fmt_intensity(row.operational_intensity)}, "
            f"NI {_fmt_intensity(row.network_intensity)})"
        )
    return "\n".join(lines)


def _fmt_intensity(value: float) -> str:
    """Fixed-format FLOP/byte for the stat lines ('inf' for silent axes)."""
    if math.isinf(value):
        return "inf"
    return f"{value:.3f}"


def format_campaign_failures(result: CampaignResult) -> str:
    """Human-readable listing of quarantined / lost-worker specs."""
    failed = result.failed_rows
    if not failed:
        return ""
    lines = ["failed specs:"]
    for row in failed:
        lines.append(
            f"  {row.workload}/{row.system}x{row.nodes}/{row.network} "
            f"rpn={row.ranks_per_node}: {row.outcome} after "
            f"{row.attempts} attempt(s): {row.error}"
        )
    return "\n".join(lines)
