"""Campaign execution: shard a grid of RunSpecs across worker processes.

A *campaign* is an ordered, deduplicated list of
:class:`~repro.campaign.spec.RunSpec`; :func:`run_campaign` executes it —
warm specs straight from the persistent store, cold specs fanned out over
a ``ProcessPoolExecutor`` (or run serially with ``jobs=1``) — and merges
results **by spec identity, never by completion order**, so the summary
table is byte-identical whatever the worker interleaving.

Campaign-level telemetry (cache hits/misses, runs executed, worker
utilization) is recorded on a standard
:class:`~repro.telemetry.instruments.Registry` so the counters export
through the existing Prometheus-style writer.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.campaign.serialize import (
    UncacheableRunError,
    run_to_payload,
    summarize_payload,
    summarize_run,
)
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore, default_store
from repro.errors import ConfigurationError
from repro.telemetry.instruments import Registry

#: Sentinel: "use the process default store" (None means "no store").
_DEFAULT_STORE = object()


@dataclass(frozen=True)
class CampaignRow:
    """One merged campaign result: spec identity plus summary metrics."""

    workload: str
    system: str
    nodes: int
    network: str
    ranks_per_node: int
    runtime_seconds: float
    gflops: float
    mflops_per_watt: float
    energy_joules: float
    network_bytes: float
    completed: bool
    #: True when this row came from the persistent store (no simulation).
    cached: bool


@dataclass
class CampaignResult:
    """Everything :func:`run_campaign` measured, deterministically ordered."""

    rows: list[CampaignRow]
    cache_hits: int
    cache_misses: int
    jobs: int
    workers_used: int
    registry: Registry

    @property
    def runs(self) -> int:
        """Number of distinct specs in the campaign."""
        return len(self.rows)


def build_campaign(
    workloads: Sequence[str],
    nodes: Sequence[int] = (4,),
    networks: Sequence[str] = ("10G",),
    system: str = "tx1",
    ranks_per_node: int | None = None,
    workload_kwargs: dict[str, dict[str, Any]] | None = None,
) -> list[RunSpec]:
    """The workload x nodes x network grid as normalized, deduped specs.

    Canonicalization can fold grid points together (every ``thunderx``
    point collapses onto one server, for instance); duplicates are dropped
    keeping first occurrence, so each simulation runs once.
    """
    if not workloads:
        raise ConfigurationError("a campaign needs at least one workload")
    kwargs_map = workload_kwargs or {}
    unknown = sorted(set(kwargs_map) - set(workloads))
    if unknown:
        raise ConfigurationError(
            f"workload_kwargs for {', '.join(unknown)} do not match any "
            f"campaign workload"
        )
    specs: list[RunSpec] = []
    seen: set[tuple] = set()
    for name in workloads:
        for node_count in nodes:
            for network in networks:
                spec = RunSpec.normalize(
                    name,
                    nodes=node_count,
                    network=network,
                    system=system,
                    ranks_per_node=ranks_per_node,
                    **kwargs_map.get(name, {}),
                )
                if spec.key not in seen:
                    seen.add(spec.key)
                    specs.append(spec)
    return specs


def load_campaign_file(path: str | Path) -> list[RunSpec]:
    """Parse a JSON campaign file into specs.

    Schema (all keys except ``workloads`` optional)::

        {
          "workloads": ["jacobi", "cg"],
          "nodes": [2, 4],
          "networks": ["1G", "10G"],
          "system": "tx1",
          "ranks_per_node": null,
          "workload_kwargs": {"jacobi": {"n": 1024, "iterations": 8}}
        }
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"campaign file {path} does not exist")
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"campaign file {path} is not valid JSON: {exc}")
    if not isinstance(document, dict):
        raise ConfigurationError(f"campaign file {path} must hold a JSON object")
    known = {
        "workloads", "nodes", "networks", "system", "ranks_per_node",
        "workload_kwargs",
    }
    unknown = sorted(set(document) - known)
    if unknown:
        raise ConfigurationError(
            f"campaign file {path}: unknown key(s) {', '.join(unknown)}; "
            f"known keys: {', '.join(sorted(known))}"
        )
    workloads = document.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise ConfigurationError(
            f"campaign file {path} needs a non-empty 'workloads' list"
        )
    return build_campaign(
        workloads,
        nodes=document.get("nodes", [4]),
        networks=document.get("networks", ["10G"]),
        system=document.get("system", "tx1"),
        ranks_per_node=document.get("ranks_per_node"),
        workload_kwargs=document.get("workload_kwargs"),
    )


def _execute_spec(spec: RunSpec, store: ResultStore | None) -> dict[str, Any]:
    """Simulate one cold spec, publish it, and return its summary row."""
    from repro.bench.runner import run_spec

    run = run_spec(spec, use_cache=False)
    try:
        payload = run_to_payload(run)
    except UncacheableRunError:
        return summarize_run(run)
    if store is not None:
        store.put("run", spec.digest, spec.fingerprint, payload)
    return summarize_payload(payload)


def _campaign_worker(task: dict[str, Any]) -> dict[str, Any]:
    """Pool entry point: run (or warm-load) one spec in a worker process."""
    spec = RunSpec.from_dict(task["spec"])
    root = task["root"]
    store = ResultStore(root) if root is not None else None
    cached = False
    if store is not None:
        payload = store.get("run", spec.digest, spec.fingerprint)
        if payload is not None:
            cached = True
            row = summarize_payload(payload)
    if not cached:
        row = _execute_spec(spec, store)
    return {
        "digest": spec.digest,
        "row": row,
        "cached": cached,
        "pid": os.getpid(),
    }


def _merge_row(spec: RunSpec, summary: dict[str, Any], cached: bool) -> CampaignRow:
    return CampaignRow(
        workload=spec.name,
        system=spec.system,
        nodes=spec.nodes,
        network=spec.network,
        ranks_per_node=spec.ranks_per_node,
        runtime_seconds=summary["runtime_seconds"],
        gflops=summary["gflops"],
        mflops_per_watt=summary["mflops_per_watt"],
        energy_joules=summary["energy_joules"],
        network_bytes=summary["network_bytes"],
        completed=summary["completed"],
        cached=cached,
    )


def run_campaign(
    specs: Iterable[RunSpec],
    jobs: int = 1,
    store: ResultStore | None = _DEFAULT_STORE,  # type: ignore[assignment]
) -> CampaignResult:
    """Execute *specs*, warm-starting from *store*, fanning out over *jobs*.

    ``store`` defaults to the process-wide persistent store (pass ``None``
    to run storeless).  With ``jobs > 1`` cold specs are sharded across a
    process pool; results always merge in spec order.  Non-revivable specs
    (enum-valued kwargs) cannot cross a process boundary and are executed
    in-process regardless of *jobs*.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if store is _DEFAULT_STORE:
        store = default_store()
    ordered: list[RunSpec] = []
    seen: set[tuple] = set()
    for spec in specs:
        if spec.key not in seen:
            seen.add(spec.key)
            ordered.append(spec)
    if not ordered:
        raise ConfigurationError("a campaign needs at least one run spec")

    rows: dict[str, CampaignRow] = {}
    pending: list[RunSpec] = []
    hits = 0
    for spec in ordered:
        payload = (
            store.get("run", spec.digest, spec.fingerprint)
            if store is not None else None
        )
        if payload is not None:
            rows[spec.digest] = _merge_row(spec, summarize_payload(payload), True)
            hits += 1
        else:
            pending.append(spec)

    shardable = [spec for spec in pending if spec.revivable]
    local = [spec for spec in pending if not spec.revivable]
    pids: set[int] = set()
    if jobs > 1 and len(shardable) > 1:
        root = str(store.root) if store is not None else None
        workers = min(jobs, len(shardable))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _campaign_worker, {"spec": spec.to_dict(), "root": root}
                ): spec
                for spec in shardable
            }
            for future in as_completed(futures):
                spec = futures[future]
                outcome = future.result()
                rows[spec.digest] = _merge_row(
                    spec, outcome["row"], outcome["cached"]
                )
                pids.add(outcome["pid"])
    else:
        local = shardable + local
    for spec in local:
        rows[spec.digest] = _merge_row(spec, _execute_spec(spec, store), False)
    if local:
        pids.add(os.getpid())

    misses = len(pending)
    registry = Registry()
    registry.counter(
        "campaign_cache_hits_total",
        "campaign runs served from the persistent result store",
    ).inc(hits)
    registry.counter(
        "campaign_cache_misses_total",
        "campaign runs that had to simulate",
    ).inc(misses)
    registry.counter(
        "campaign_runs_total", "distinct run specs in the campaign",
    ).inc(len(ordered))
    registry.gauge(
        "campaign_workers_configured", "worker processes requested (--jobs)",
    ).set(jobs)
    registry.gauge(
        "campaign_workers_used", "worker processes that executed >= 1 run",
    ).set(len(pids))
    return CampaignResult(
        rows=[rows[spec.digest] for spec in ordered],
        cache_hits=hits,
        cache_misses=misses,
        jobs=jobs,
        workers_used=len(pids),
        registry=registry,
    )


def format_campaign_table(result: CampaignResult) -> str:
    """The deterministic summary table (fixed widths, fixed float formats).

    Deliberately excludes cache provenance (that lives in
    :func:`format_campaign_stats`): the table is byte-identical whether
    rows came from workers, the serial path, or a warm store.
    """
    header = (
        f"{'workload':<12} {'system':<9} {'nodes':>5} {'net':>4} {'rpn':>4} "
        f"{'runtime[s]':>14} {'GFLOPS':>10} {'MFLOPS/W':>10} "
        f"{'energy[J]':>14} {'ok':>3}"
    )
    lines = [header, "-" * len(header)]
    for row in result.rows:
        lines.append(
            f"{row.workload:<12} {row.system:<9} {row.nodes:>5} "
            f"{row.network:>4} {row.ranks_per_node:>4} "
            f"{row.runtime_seconds:>14.6f} {row.gflops:>10.3f} "
            f"{row.mflops_per_watt:>10.1f} {row.energy_joules:>14.2f} "
            f"{'yes' if row.completed else 'NO':>3}"
        )
    return "\n".join(lines)


def format_campaign_stats(result: CampaignResult) -> str:
    """The (cache-state-dependent) counter summary printed after the table."""
    return (
        f"cache: {result.cache_hits} hits, {result.cache_misses} misses\n"
        f"workers: {result.workers_used} used of {result.jobs} requested"
    )
