"""Supervised campaign execution: retries, crash recovery, quarantine, resume.

:func:`run_campaign <repro.campaign.runner.run_campaign>` used to call
``future.result()`` bare, so one worker exception — or a worker process
dying and taking the whole ``ProcessPoolExecutor`` down as a
``BrokenProcessPool`` — aborted the campaign and discarded every
already-completed result.  This module wraps the fan-out in a supervisor
with per-spec outcome taxonomy and failure-aware scheduling:

* **ok** — completed on the first attempt;
* **retried** — completed after >= 1 failed attempt (seeded, deterministic
  exponential backoff between attempts);
* **quarantined** — a poison spec: every attempt raised inside the worker
  until the retry budget ran out; the campaign completes with a
  ``completed=False`` row naming the spec and its last error;
* **lost-worker** — every attempt died with the worker (crash) or hit the
  per-task timeout; same terminal handling as quarantine.

Crash recovery: a ``BrokenProcessPool`` cannot name the culprit (every
in-flight future fails at once), so the first break rebuilds the pool and
resubmits only the lost specs; a second break switches to **isolation
mode** — remaining specs run one at a time in single-worker pools, which
attributes every further crash to exactly the spec that caused it.
Hang recovery: with ``task_timeout`` set, a watchdog (driven purely by
``concurrent.futures.wait`` timeouts — no wall-clock reads in this
module, so lint RL001/RL100 stay clean) kills and rebuilds the pool
around a stuck task and retries it like any other failure.

Every terminal outcome is appended to a JSONL journal under
``<store>/campaigns/``, making an interrupted campaign resumable:
``repro sweep --resume`` replays journaled rows and re-runs only the
specs that never finished.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.campaign.chaos import ChaosSchedule, apply_chaos
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore, _advise
from repro.errors import CampaignError, ConfigurationError, WorkerLostError
from repro.hostprof.clock import Stopwatch

#: Per-spec terminal outcomes (the supervisor's taxonomy).
OUTCOME_OK = "ok"
OUTCOME_RETRIED = "retried"
OUTCOME_QUARANTINED = "quarantined"
OUTCOME_LOST_WORKER = "lost-worker"

#: Outcomes that produced a summary row.
COMPLETED_OUTCOMES = (OUTCOME_OK, OUTCOME_RETRIED)


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded, deterministic retry/backoff configuration.

    ``delay(digest, failure)`` is a pure function of the policy seed, the
    spec digest, and the failure ordinal — two campaigns with the same
    specs and policy sleep the exact same schedule (RL001: the jitter RNG
    is explicitly seeded, never the global Mersenne state).
    """

    retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ConfigurationError(
                f"backoff base must be >= 0 and factor >= 1, got "
                f"base={self.backoff_base} factor={self.backoff_factor}"
            )
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, digest: str, failure: int) -> float:
        """Seconds to back off after *digest*'s *failure*-th failure."""
        base = self.backoff_base * self.backoff_factor ** failure
        if not self.jitter or not base:
            return base
        rng = random.Random(f"{self.seed}:{digest}:{failure}")
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class SpecRecord:
    """One spec's terminal state under supervision."""

    spec: RunSpec
    outcome: str
    attempts: int
    row: dict[str, Any] | None
    cached: bool = False
    error: str | None = None
    #: Host-clock timings (wall/queue-wait/busy) when a recorder rode along.
    host: dict[str, Any] | None = None

    @property
    def completed(self) -> bool:
        return self.outcome in COMPLETED_OUTCOMES


def campaign_digest(specs: Sequence[RunSpec]) -> str:
    """Content address of a campaign: its spec set plus the code version.

    Order-insensitive (a resumed campaign may list specs differently) and
    fingerprint-qualified (a journal written under different simulator
    source must not be resumed — the rows would be stale).
    """
    fingerprint = specs[0].fingerprint if specs else ""
    body = fingerprint + ":" + ",".join(sorted(s.digest for s in specs))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:24]


class CampaignJournal:
    """Append-only JSONL journal of terminal spec outcomes.

    One line per decided spec (plus a header), flushed as written, so a
    campaign killed mid-flight leaves a prefix that ``--resume`` replays:
    journaled specs are served from their recorded rows (quarantined ones
    stay quarantined — delete the journal to retry them) and only the
    undecided remainder re-runs.  A torn trailing line (the kill landed
    mid-write) is tolerated and simply re-run.  Journal I/O failures
    degrade to an advisory — the journal, like the store, is never a
    source of errors.
    """

    VERSION = 1

    def __init__(self, path: Path, campaign: str) -> None:
        self.path = path
        self.campaign = campaign
        self.errors = 0

    @classmethod
    def for_campaign(
        cls, root: str | Path, specs: Sequence[RunSpec]
    ) -> "CampaignJournal":
        digest = campaign_digest(specs)
        return cls(Path(root) / "campaigns" / f"{digest}.jsonl", digest)

    def _header(self, specs: Sequence[RunSpec]) -> dict[str, Any]:
        return {
            "journal": self.VERSION,
            "campaign": self.campaign,
            "fingerprint": specs[0].fingerprint if specs else "",
            "specs": len(specs),
        }

    def load(self) -> dict[str, dict[str, Any]]:
        """Journaled terminal entries by digest (empty when unusable)."""
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return {}
        entries: dict[str, dict[str, Any]] = {}
        for index, line in enumerate(lines):
            try:
                document = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail from a mid-write kill: replay stops here
            if index == 0:
                if (
                    not isinstance(document, dict)
                    or document.get("campaign") != self.campaign
                ):
                    return {}  # foreign or damaged header: not resumable
                continue
            if isinstance(document, dict) and "digest" in document:
                entries[document["digest"]] = document
        return entries

    def begin(
        self, specs: Sequence[RunSpec], resume: bool
    ) -> dict[str, dict[str, Any]]:
        """Open the journal; returns replayable entries when *resume*."""
        entries = self.load() if resume else {}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if entries:
                # Keep the surviving prefix; new outcomes append after it.
                return entries
            self.path.write_text(
                json.dumps(self._header(specs), sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError as exc:
            self._degrade(exc)
        return entries

    def record(self, record: SpecRecord) -> None:
        """Append one terminal outcome (flushed immediately)."""
        entry = {
            "digest": record.spec.digest,
            "outcome": record.outcome,
            "attempts": record.attempts,
            "cached": record.cached,
            "row": record.row,
            "error": record.error,
        }
        if record.host is not None:
            # Advisory host timings ride along only when measured, so
            # journals written without a recorder stay byte-identical.
            entry["host"] = record.host
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
                handle.flush()
        except OSError as exc:
            self._degrade(exc)

    def _degrade(self, exc: OSError) -> None:
        self.errors += 1
        if self.errors == 1:
            _advise(f"campaign journal degraded ({exc}); --resume unavailable")


def record_from_journal(spec: RunSpec, entry: dict[str, Any]) -> SpecRecord:
    """Revive a terminal record from its journal entry."""
    return SpecRecord(
        spec=spec,
        outcome=str(entry.get("outcome", OUTCOME_OK)),
        attempts=int(entry.get("attempts", 1)),
        row=entry.get("row"),
        cached=True,
        error=entry.get("error"),
        host=entry.get("host"),
    )


def _campaign_worker(task: dict[str, Any]) -> dict[str, Any]:
    """Pool entry point: run (or warm-load) one spec in a worker process."""
    from repro.campaign.runner import execute_spec, summarize_payload

    spec = RunSpec.from_dict(task["spec"])
    chaos = task.get("chaos")
    if chaos is not None:
        apply_chaos(
            ChaosSchedule.from_dict(chaos), spec.digest,
            task.get("attempt", 0), in_worker=True,
        )
    # Worker-side busy time, measured only when the campaign carries a
    # host recorder (the read stays inside the Stopwatch instance).
    stopwatch = Stopwatch() if task.get("host") else None
    root = task["root"]
    store = ResultStore(root) if root is not None else None
    cached = False
    if store is not None:
        payload = store.get("run", spec.digest, spec.fingerprint)
        if payload is not None:
            cached = True
            row = summarize_payload(payload)
    if not cached:
        row = execute_spec(spec, store)
    return {
        "digest": spec.digest,
        "row": row,
        "cached": cached,
        "pid": os.getpid(),
        "host_wall": stopwatch.elapsed() if stopwatch is not None else None,
    }


class CampaignSupervisor:
    """Drive a set of cold specs to terminal outcomes, surviving workers.

    The watchdog never reads a clock: elapsed time is accounted in
    ``wait(timeout=tick)`` rounds that returned nothing, which
    *undercounts* while healthy work is still completing — a hung worker
    is therefore detected at the latest once healthy work drains plus one
    ``task_timeout``.  Conservative, deterministic in structure, and
    RL001-clean.
    """

    def __init__(
        self,
        specs: Sequence[RunSpec],
        jobs: int = 1,
        store: ResultStore | None = None,
        policy: RetryPolicy | None = None,
        task_timeout: float | None = None,
        chaos: ChaosSchedule | None = None,
        journal: CampaignJournal | None = None,
        sleep: Callable[[float], None] | None = None,
        host: Any | None = None,
        progress: Callable[[SpecRecord], None] | None = None,
    ) -> None:
        if task_timeout is not None and task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be positive, got {task_timeout}"
            )
        self.specs = list(specs)
        self.jobs = jobs
        self.store = store
        self.policy = policy or RetryPolicy()
        self.task_timeout = task_timeout
        self.chaos = chaos
        self.journal = journal
        #: Optional CampaignHostRecorder; purely observational (advisory
        #: host timings — never steers scheduling or results).
        self.host = host
        #: Optional per-terminal-record callback (the --progress heartbeat).
        self.progress = progress
        self.sleep = sleep if sleep is not None else time.sleep
        self.records: dict[str, SpecRecord] = {}
        self.pids: set[int] = set()
        self.counters = {
            "retries": 0,
            "quarantined": 0,
            "lost_workers": 0,
            "pool_rebuilds": 0,
            "timeouts": 0,
        }
        self._failures: dict[str, int] = {}
        self._last_error: dict[str, str] = {}
        self._tick = (
            min(0.1, task_timeout / 4) if task_timeout is not None else 0.25
        )

    # -- shared bookkeeping ----------------------------------------------------

    def _attempts(self, digest: str) -> int:
        return self._failures.get(digest, 0)

    def _finalize(self, record: SpecRecord) -> None:
        if self.host is not None and record.host is None:
            record.host = self.host.journal_entry(record.spec.digest)
        self.records[record.spec.digest] = record
        # Both terminal failure outcomes count as quarantines: the spec is
        # out of the campaign either way; the row keeps the finer taxonomy.
        if record.outcome in (OUTCOME_QUARANTINED, OUTCOME_LOST_WORKER):
            self.counters["quarantined"] += 1
        if self.journal is not None:
            self.journal.record(record)
        if self.progress is not None:
            self.progress(record)

    def _succeeded(self, spec: RunSpec, row: dict[str, Any], cached: bool) -> None:
        failures = self._attempts(spec.digest)
        self._finalize(SpecRecord(
            spec=spec,
            outcome=OUTCOME_OK if failures == 0 else OUTCOME_RETRIED,
            attempts=failures + 1,
            row=row,
            cached=cached,
        ))

    def _failed(
        self, spec: RunSpec, error: str, lost: bool
    ) -> bool:
        """Record one attributed failed attempt; True when spec is spent."""
        digest = spec.digest
        self._failures[digest] = self._attempts(digest) + 1
        self._last_error[digest] = error
        if self._failures[digest] > self.policy.retries:
            self._finalize(SpecRecord(
                spec=spec,
                outcome=OUTCOME_LOST_WORKER if lost else OUTCOME_QUARANTINED,
                attempts=self._failures[digest],
                row=None,
                error=error,
            ))
            return True
        self.counters["retries"] += 1
        self.sleep(self.policy.delay(digest, self._failures[digest] - 1))
        return False

    # -- serial execution ------------------------------------------------------

    def _execute_serial(self, spec: RunSpec) -> None:
        from repro.campaign.runner import execute_spec

        while True:
            attempt = self._attempts(spec.digest)
            if self.host is not None:
                self.host.spec_submitted(spec.digest, spec.label)
            try:
                if self.chaos is not None:
                    apply_chaos(
                        self.chaos, spec.digest, attempt, in_worker=False
                    )
                row = execute_spec(spec, self.store)
            except Exception as exc:  # deterministic sim errors + chaos
                if self._failed(spec, f"{type(exc).__name__}: {exc}", False):
                    return
            else:
                self.pids.add(os.getpid())
                if self.host is not None:
                    self.host.spec_done(spec.digest, os.getpid())
                self._succeeded(spec, row, cached=False)
                return

    # -- pool execution --------------------------------------------------------

    def _task(self, spec: RunSpec) -> dict[str, Any]:
        return {
            "spec": spec.to_dict(),
            "root": str(self.store.root) if self.store is not None else None,
            "attempt": self._attempts(spec.digest),
            "chaos": self.chaos.to_dict() if self.chaos is not None else None,
            "host": self.host is not None,
        }

    def _terminate_pool(self, pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on its (possibly hung) tasks."""
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except (OSError, ValueError):
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _run_pool(self, specs: list[RunSpec]) -> None:
        queue: deque[RunSpec] = deque(specs)
        breaks = 0
        pool: ProcessPoolExecutor | None = None
        futures: dict[Any, RunSpec] = {}
        sequence: dict[Any, int] = {}
        waited: dict[Any, float] = {}
        submitted = 0
        try:
            while queue or futures:
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=min(self.jobs, max(len(queue), 1))
                    )
                submit_broken = False
                while queue:
                    spec = queue.popleft()
                    try:
                        future = pool.submit(
                            _campaign_worker, self._task(spec)
                        )
                    except BrokenProcessPool:
                        # The pool died while we were still feeding it.
                        queue.appendleft(spec)
                        submit_broken = True
                        break
                    if self.host is not None:
                        self.host.spec_submitted(spec.digest, spec.label)
                    futures[future] = spec
                    sequence[future] = submitted
                    waited[future] = 0.0
                    submitted += 1
                if submit_broken:
                    breaks += 1
                    self.counters["lost_workers"] += 1
                    self.counters["pool_rebuilds"] += 1
                    for spec in futures.values():
                        queue.append(spec)
                    futures.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    if breaks >= 2:
                        self._isolation_drain(queue)
                        return
                    continue
                done, not_done = wait(
                    list(futures),
                    timeout=self._tick if self.task_timeout else None,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # A full tick elapsed with nothing finishing: charge it
                    # to every outstanding task and fire the watchdog.
                    hung = []
                    for future in not_done:
                        waited[future] += self._tick
                        if (
                            self.task_timeout is not None
                            and waited[future] >= self.task_timeout
                        ):
                            hung.append(future)
                    if hung:
                        self._handle_hang(hung, futures, queue)
                        self._terminate_pool(pool)
                        pool = None
                        futures.clear()
                        self.counters["pool_rebuilds"] += 1
                    continue
                broken = False
                for future in sorted(done, key=sequence.__getitem__):
                    spec = futures.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        broken = True
                        queue.append(spec)
                    except Exception as exc:  # raised inside the worker
                        if not self._failed(
                            spec, f"{type(exc).__name__}: {exc}", False
                        ):
                            queue.append(spec)
                    else:
                        self.pids.add(outcome["pid"])
                        if self.host is not None:
                            self.host.spec_done(
                                spec.digest, outcome["pid"],
                                outcome.get("host_wall"),
                            )
                        self._succeeded(spec, outcome["row"], outcome["cached"])
                if broken:
                    # The pool is gone and the culprit is anonymous: every
                    # still-in-flight spec goes back on the queue.  One
                    # break is forgiven (rebuild, resubmit everything
                    # lost); a second means a crasher is loose — switch to
                    # isolation so the next death names its spec exactly.
                    breaks += 1
                    self.counters["lost_workers"] += 1
                    self.counters["pool_rebuilds"] += 1
                    for spec in futures.values():
                        queue.append(spec)
                    futures.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    if breaks >= 2:
                        self._isolation_drain(queue)
                        return
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)

    def _isolation_drain(self, queue: deque[RunSpec]) -> None:
        """Attribute crash blame exactly: one spec per single-worker pool."""
        pending = deque(queue)
        queue.clear()
        while pending:
            spec = pending.popleft()
            with ProcessPoolExecutor(max_workers=1) as solo:
                future = solo.submit(_campaign_worker, self._task(spec))
                if self.host is not None:
                    self.host.spec_submitted(spec.digest, spec.label)
                waited = 0.0
                while True:
                    done, _ = wait(
                        [future],
                        timeout=self._tick if self.task_timeout else None,
                    )
                    if done:
                        break
                    waited += self._tick
                    if (
                        self.task_timeout is not None
                        and waited >= self.task_timeout
                    ):
                        break
                if not done:
                    self.counters["timeouts"] += 1
                    self.counters["lost_workers"] += 1
                    self._terminate_pool(solo)
                    if not self._failed(
                        spec,
                        f"WorkerLostError: task exceeded "
                        f"{self.task_timeout}s timeout",
                        True,
                    ):
                        pending.append(spec)
                    continue
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    self.counters["lost_workers"] += 1
                    self.counters["pool_rebuilds"] += 1
                    if not self._failed(
                        spec,
                        "WorkerLostError: worker process died "
                        "(BrokenProcessPool)",
                        True,
                    ):
                        pending.append(spec)
                except Exception as exc:
                    if not self._failed(
                        spec, f"{type(exc).__name__}: {exc}", False
                    ):
                        pending.append(spec)
                else:
                    self.pids.add(outcome["pid"])
                    if self.host is not None:
                        self.host.spec_done(
                            spec.digest, outcome["pid"],
                            outcome.get("host_wall"),
                        )
                    self._succeeded(spec, outcome["row"], outcome["cached"])

    def _handle_hang(
        self,
        hung: list[Any],
        futures: dict[Any, RunSpec],
        queue: deque[RunSpec],
    ) -> None:
        """Classify timed-out tasks; requeue innocents caught in the cull."""
        hung_set = set(hung)
        for future, spec in list(futures.items()):
            if future in hung_set:
                self.counters["timeouts"] += 1
                self.counters["lost_workers"] += 1
                if not self._failed(
                    spec,
                    f"WorkerLostError: task exceeded "
                    f"{self.task_timeout}s timeout",
                    True,
                ):
                    queue.append(spec)
            else:
                # Innocent bystander: the pool around it is being torn
                # down.  Resubmit without charging its retry budget.
                queue.append(spec)

    # -- entry point -----------------------------------------------------------

    def run(self) -> dict[str, SpecRecord]:
        """Drive every spec to a terminal record (never raises per-spec)."""
        shardable = [s for s in self.specs if s.revivable]
        local = [s for s in self.specs if not s.revivable]
        if self.jobs > 1 and len(shardable) > 1:
            self._run_pool(shardable)
        else:
            local = shardable + local
        for spec in local:
            self._execute_serial(spec)
        missing = [s for s in self.specs if s.digest not in self.records]
        for spec in missing:  # defensive: nothing may end undecided
            self._finalize(SpecRecord(
                spec=spec,
                outcome=OUTCOME_LOST_WORKER,
                attempts=self._attempts(spec.digest),
                row=None,
                error=self._last_error.get(
                    spec.digest, "WorkerLostError: spec never completed"
                ),
            ))
        return self.records


# Re-exported for error-taxonomy completeness (callers catch CampaignError).
__all__ = [
    "COMPLETED_OUTCOMES",
    "CampaignError",
    "CampaignJournal",
    "CampaignSupervisor",
    "OUTCOME_LOST_WORKER",
    "OUTCOME_OK",
    "OUTCOME_QUARANTINED",
    "OUTCOME_RETRIED",
    "RetryPolicy",
    "SpecRecord",
    "WorkerLostError",
    "campaign_digest",
    "record_from_journal",
]
