"""Sweep campaigns with a persistent, config-addressed result cache.

The layer between one measurement and the paper's figures:

* :class:`~repro.campaign.spec.RunSpec` — the canonical, normalized,
  hashable identity of one run (resolved workload kwargs, canonicalized
  cluster shape, source fingerprint);
* :class:`~repro.campaign.store.ResultStore` — the on-disk JSON store
  under ``.repro-cache/``, fingerprint-invalidated;
* :func:`~repro.campaign.runner.run_campaign` — shard a grid of specs
  across worker processes and merge deterministically;
* ``python -m repro sweep`` — the CLI over all of it.

See ``docs/CAMPAIGN.md``.
"""

from repro.campaign.runner import (
    CampaignResult,
    CampaignRow,
    build_campaign,
    format_campaign_stats,
    format_campaign_table,
    load_campaign_file,
    run_campaign,
)
from repro.campaign.serialize import (
    UncacheableRunError,
    run_from_payload,
    run_to_payload,
    summarize_payload,
)
from repro.campaign.spec import RunSpec, build_cluster, code_fingerprint
from repro.campaign.store import ResultStore, default_store, reset_default_store

__all__ = [
    "CampaignResult",
    "CampaignRow",
    "ResultStore",
    "RunSpec",
    "UncacheableRunError",
    "build_campaign",
    "build_cluster",
    "code_fingerprint",
    "default_store",
    "format_campaign_stats",
    "format_campaign_table",
    "load_campaign_file",
    "reset_default_store",
    "run_campaign",
    "run_from_payload",
    "run_to_payload",
    "summarize_payload",
]
