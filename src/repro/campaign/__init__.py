"""Sweep campaigns with a persistent, config-addressed result cache.

The layer between one measurement and the paper's figures:

* :class:`~repro.campaign.spec.RunSpec` — the canonical, normalized,
  hashable identity of one run (resolved workload kwargs, canonicalized
  cluster shape, source fingerprint);
* :class:`~repro.campaign.store.ResultStore` — the on-disk JSON store
  under ``.repro-cache/``, fingerprint-invalidated, checksummed and
  self-healing;
* :func:`~repro.campaign.runner.run_campaign` — shard a grid of specs
  across worker processes under the
  :class:`~repro.campaign.supervisor.CampaignSupervisor` (retries,
  crash recovery, quarantine, journaled resume) and merge
  deterministically;
* :mod:`~repro.campaign.chaos` — seeded fault injection for proving the
  recovery machinery converges to fault-free results;
* ``python -m repro sweep`` — the CLI over all of it.

See ``docs/CAMPAIGN.md``.
"""

from repro.campaign.chaos import (
    ChaosInjectedError,
    ChaosSchedule,
    corrupt_store_entry,
)
from repro.campaign.runner import (
    CampaignResult,
    CampaignRow,
    build_campaign,
    execute_spec,
    format_campaign_failures,
    format_campaign_stats,
    format_campaign_table,
    load_campaign_file,
    run_campaign,
)
from repro.campaign.serialize import (
    UncacheableRunError,
    payload_checksum,
    run_from_payload,
    run_to_payload,
    summarize_payload,
)
from repro.campaign.spec import RunSpec, build_cluster, code_fingerprint
from repro.campaign.store import ResultStore, default_store, reset_default_store
from repro.campaign.supervisor import (
    COMPLETED_OUTCOMES,
    OUTCOME_LOST_WORKER,
    OUTCOME_OK,
    OUTCOME_QUARANTINED,
    OUTCOME_RETRIED,
    CampaignJournal,
    CampaignSupervisor,
    RetryPolicy,
    SpecRecord,
    campaign_digest,
)
from repro.errors import CampaignError, SpecQuarantinedError, WorkerLostError

__all__ = [
    "COMPLETED_OUTCOMES",
    "CampaignError",
    "CampaignJournal",
    "CampaignResult",
    "CampaignRow",
    "CampaignSupervisor",
    "ChaosInjectedError",
    "ChaosSchedule",
    "OUTCOME_LOST_WORKER",
    "OUTCOME_OK",
    "OUTCOME_QUARANTINED",
    "OUTCOME_RETRIED",
    "ResultStore",
    "RetryPolicy",
    "RunSpec",
    "SpecQuarantinedError",
    "SpecRecord",
    "UncacheableRunError",
    "WorkerLostError",
    "build_campaign",
    "build_cluster",
    "campaign_digest",
    "code_fingerprint",
    "corrupt_store_entry",
    "default_store",
    "execute_spec",
    "format_campaign_failures",
    "format_campaign_stats",
    "format_campaign_table",
    "load_campaign_file",
    "payload_checksum",
    "reset_default_store",
    "run_campaign",
    "run_from_payload",
    "run_to_payload",
    "summarize_payload",
]
