"""Deterministic chaos injection for supervised campaigns.

The same philosophy as :mod:`repro.faults`, lifted one layer up: the
fault schedule is *pure data*, derived once from an explicit seed, and
every sabotage decision is a deterministic function of ``(spec digest,
attempt number)`` — so a chaos campaign is exactly reproducible, and a
*transient* fault (sabotaged attempts 0..k-1, clean afterwards) provably
converges to the fault-free result under the supervisor's retries.

Three worker-side fault kinds plus one store-side kind:

* ``crash`` — the worker process dies mid-task (``os._exit``), which the
  parent observes as a ``BrokenProcessPool``;
* ``hang``  — the worker stalls for ``hang_seconds`` before failing the
  attempt (long enough for the supervisor's ``--task-timeout`` watchdog
  to fire first; the trailing failure keeps timeout-less campaigns from
  deadlocking);
* ``fail``  — the worker raises :class:`ChaosInjectedError` in-task (the
  only kind applied verbatim in serial campaigns, where crashing or
  hanging would take the campaign process down with it);
* ``corrupt`` — a named spec's store entry is vandalized *before* the
  campaign starts, exercising the store's checksum-repair path.

A sabotage budget of ``-1`` means "every attempt" — that spec is a
poison spec and must end quarantined, not retried forever.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import CampaignError, ConfigurationError

#: Worker-side fault kinds, in the order schedules are drawn.
CHAOS_KINDS = ("crash", "hang", "fail")


class ChaosInjectedError(CampaignError):
    """The failure a ``fail`` injection raises inside the worker."""


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded, declarative assignment of faults to spec digests.

    ``crash``/``hang``/``fail`` map a digest to its sabotage budget: the
    number of leading attempts to sabotage (``-1`` = all of them).
    ``corrupt`` names digests whose store entries are vandalized before
    the campaign begins.
    """

    seed: int = 0
    crash: Mapping[str, int] = field(default_factory=dict)
    hang: Mapping[str, int] = field(default_factory=dict)
    fail: Mapping[str, int] = field(default_factory=dict)
    corrupt: tuple[str, ...] = ()
    #: How long a ``hang`` stalls the worker (real seconds).
    hang_seconds: float = 4.0

    def __post_init__(self) -> None:
        if self.hang_seconds <= 0:
            raise ConfigurationError(
                f"hang_seconds must be positive, got {self.hang_seconds}"
            )
        for kind in CHAOS_KINDS:
            for digest, budget in getattr(self, kind).items():
                if not isinstance(budget, int) or budget == 0 or budget < -1:
                    raise ConfigurationError(
                        f"chaos {kind} budget for {digest} must be a "
                        f"positive attempt count or -1 (always), "
                        f"got {budget!r}"
                    )

    @classmethod
    def plan(
        cls,
        specs: Sequence[Any],
        seed: int = 0,
        crashes: int = 1,
        hangs: int = 1,
        failures: int = 1,
        poison: int = 0,
        corrupt: int = 1,
        hang_seconds: float = 4.0,
    ) -> "ChaosSchedule":
        """Draw a victim assignment over *specs* from a seeded stream.

        Each worker-side fault claims a distinct victim (transient: one
        sabotaged attempt, except ``poison`` victims which fail forever);
        ``corrupt`` victims are drawn independently — corrupting a warm
        entry for a spec that also crashes once is a legitimate pile-up.
        """
        digests = [spec.digest for spec in specs]
        wanted = crashes + hangs + failures + poison
        if wanted > len(digests):
            raise ConfigurationError(
                f"chaos plan wants {wanted} worker-fault victims but the "
                f"campaign has only {len(digests)} specs"
            )
        if min(crashes, hangs, failures, poison, corrupt) < 0:
            raise ConfigurationError("chaos fault counts must be >= 0")
        rng = random.Random(seed)
        pool = list(digests)
        rng.shuffle(pool)
        take = lambda n: [pool.pop() for _ in range(n)]  # noqa: E731
        crash = {digest: 1 for digest in take(crashes)}
        hang = {digest: 1 for digest in take(hangs)}
        fail = {digest: 1 for digest in take(failures)}
        fail.update({digest: -1 for digest in take(poison)})
        corrupted = tuple(
            sorted(rng.sample(digests, min(corrupt, len(digests))))
        )
        return cls(
            seed=seed,
            crash=crash,
            hang=hang,
            fail=fail,
            corrupt=corrupted,
            hang_seconds=hang_seconds,
        )

    def action(self, digest: str, attempt: int) -> str | None:
        """The sabotage (if any) for *digest*'s *attempt*-th execution."""
        for kind in CHAOS_KINDS:
            budget = getattr(self, kind).get(digest)
            if budget is not None and (budget < 0 or attempt < budget):
                return kind
        return None

    def poison_digests(self) -> tuple[str, ...]:
        """Digests sabotaged on every attempt (must end quarantined)."""
        return tuple(sorted(
            digest
            for kind in CHAOS_KINDS
            for digest, budget in getattr(self, kind).items()
            if budget < 0
        ))

    # -- wire form (campaign workers) ------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "crash": dict(self.crash),
            "hang": dict(self.hang),
            "fail": dict(self.fail),
            "corrupt": list(self.corrupt),
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ChaosSchedule":
        return cls(
            seed=document.get("seed", 0),
            crash=dict(document.get("crash", {})),
            hang=dict(document.get("hang", {})),
            fail=dict(document.get("fail", {})),
            corrupt=tuple(document.get("corrupt", ())),
            hang_seconds=document.get("hang_seconds", 4.0),
        )


def apply_chaos(
    schedule: ChaosSchedule, digest: str, attempt: int, in_worker: bool
) -> None:
    """Execute the sabotage scheduled for (*digest*, *attempt*), if any.

    Called at the top of every task execution.  ``in_worker=False``
    (serial campaigns) downgrades ``crash``/``hang`` to ``fail`` — the
    campaign process cannot survive killing or stalling itself, and a
    downgraded fault still exercises the same retry/quarantine path.
    """
    action = schedule.action(digest, attempt)
    if action is None:
        return
    if action == "crash" and in_worker:
        os._exit(13)  # simulate a segfaulting worker: no cleanup, no excuse
    if action == "hang" and in_worker:
        time.sleep(schedule.hang_seconds)
    raise ChaosInjectedError(
        f"chaos-injected {action} for spec {digest[:12]} attempt {attempt}"
    )


def corrupt_store_entry(store: Any, kind: str, digest: str) -> bool:
    """Vandalize the stored entry for (*kind*, *digest*), if present.

    The damage leaves the JSON well-formed but flips the payload under
    the recorded checksum — exactly the corruption class only the
    checksum (not the JSON parser) can catch.  Returns True when an
    entry was corrupted.
    """
    path = store.entry_path(kind, digest)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return False
    document["payload"] = {"chaos": "vandalized payload"}
    path.write_text(json.dumps(document, sort_keys=True) + "\n", encoding="utf-8")
    return True
