"""ExperimentRun <-> JSON payload for the persistent store.

The payload captures everything downstream consumers read off a cached
run — the full :class:`~repro.cluster.job.JobResult` (energy, per-rank
counters, GPU profiler records), the trace when one was collected, and the
rank placement.  The workload and cluster are *rebuilt* from the
:class:`~repro.campaign.spec.RunSpec` on load (their construction is cheap
and deterministic); a reloaded run therefore carries a fresh, un-simulated
cluster whose ``spec``/``node_count`` match the original — which is all
the analysis layers consult.

Floats survive the JSON round trip exactly (``repr`` round-tripping), so
tables regenerated from a warm store are byte-identical to cold runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields
from typing import Any

from repro.cluster.job import JobResult, RankCounters
from repro.cluster.metering import EnergyReport
from repro.cuda.events import CopyRecord, KernelRecord, Profiler
from repro.errors import ReproError
from repro.tracing.events import (
    CommRecord,
    MarkerRecord,
    RecvRecord,
    StateRecord,
    Trace,
)

#: Payload layout version (independent of the store schema).
PAYLOAD_SCHEMA = 1


class UncacheableRunError(ReproError):
    """The run carries values the JSON store cannot represent faithfully.

    Raised (and swallowed by the caller) when e.g. a rank program returned
    an ad-hoc object; such runs simply stay in the in-process cache.
    """


def payload_checksum(payload: Any) -> str:
    """A short content checksum of a JSON-safe payload.

    The store writes this next to every entry and re-derives it on read,
    so a flipped bit (or a hand-edited file) is detected even when the
    damage leaves the JSON well-formed.  Canonical serialization
    (sorted keys, no whitespace) makes the checksum independent of how
    the document happened to be written.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _pack(record: Any) -> list[Any]:
    """A dataclass instance as a field-ordered value list."""
    return [getattr(record, f.name) for f in fields(record)]


def _unpack(cls: type, values: list[Any]) -> Any:
    """Rebuild a dataclass from :func:`_pack` output."""
    return cls(*values)


def _checked(value: Any, where: str) -> Any:
    """*value* if it round-trips through JSON unchanged, else an error."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_checked(item, where) for item in value]
    if isinstance(value, dict) and all(isinstance(k, str) for k in value):
        return {key: _checked(item, where) for key, item in value.items()}
    raise UncacheableRunError(
        f"{where} holds {type(value).__name__}, which the result store "
        f"cannot serialize faithfully"
    )


def run_to_payload(run) -> dict[str, Any]:
    """Serialize an :class:`~repro.bench.runner.ExperimentRun`.

    Raises :class:`UncacheableRunError` when a rank return value is not
    JSON-representable.
    """
    result = run.result
    payload: dict[str, Any] = {
        "schema": PAYLOAD_SCHEMA,
        "result": {
            "elapsed_seconds": result.elapsed_seconds,
            "energy": _pack(result.energy),
            "rank_values": _checked(result.rank_values, "rank_values"),
            "counters": [_pack(c) for c in result.counters],
            "comm_seconds": list(result.comm_seconds),
            "network_bytes": result.network_bytes,
            "gpu_dram_bytes": result.gpu_dram_bytes,
            "gpu_flops": result.gpu_flops,
            "cpu_flops": result.cpu_flops,
            "gpu_profilers": [
                {
                    "kernels": [_pack(k) for k in p.kernels],
                    "copies": [_pack(c) for c in p.copies],
                }
                for p in result.gpu_profilers
            ],
            "failures": {str(rank): text for rank, text in result.failures.items()},
            "comm_retries": result.comm_retries,
            "loopback_bytes": result.loopback_bytes,
        },
        "rank_to_node": list(run.rank_to_node),
        "trace": None,
    }
    trace = run.trace
    if trace is not None:
        payload["trace"] = {
            "n_ranks": trace.n_ranks,
            "states": [_pack(r) for r in trace.states],
            "comms": [_pack(r) for r in trace.comms],
            "recvs": [_pack(r) for r in trace.recvs],
            "markers": [_pack(r) for r in trace.markers],
            "t_start": trace.t_start,
            "t_end": trace.t_end,
        }
    return payload


def result_from_payload(document: dict[str, Any]) -> JobResult:
    """Rebuild the :class:`JobResult` part of a payload."""
    return JobResult(
        elapsed_seconds=document["elapsed_seconds"],
        energy=_unpack(EnergyReport, document["energy"]),
        rank_values=list(document["rank_values"]),
        counters=[_unpack(RankCounters, c) for c in document["counters"]],
        comm_seconds=list(document["comm_seconds"]),
        network_bytes=document["network_bytes"],
        gpu_dram_bytes=document["gpu_dram_bytes"],
        gpu_flops=document["gpu_flops"],
        cpu_flops=document["cpu_flops"],
        gpu_profilers=[
            Profiler(
                kernels=[_unpack(KernelRecord, k) for k in p["kernels"]],
                copies=[_unpack(CopyRecord, c) for c in p["copies"]],
            )
            for p in document["gpu_profilers"]
        ],
        failures={int(rank): text for rank, text in document["failures"].items()},
        comm_retries=document["comm_retries"],
        # Absent in payloads written before the loopback-accounting fix.
        loopback_bytes=document.get("loopback_bytes", 0.0),
    )


def trace_from_payload(document: dict[str, Any] | None) -> Trace | None:
    """Rebuild the trace part of a payload (None when the run was untraced)."""
    if document is None:
        return None
    return Trace(
        n_ranks=document["n_ranks"],
        states=[_unpack(StateRecord, r) for r in document["states"]],
        comms=[_unpack(CommRecord, r) for r in document["comms"]],
        recvs=[_unpack(RecvRecord, r) for r in document["recvs"]],
        markers=[_unpack(MarkerRecord, r) for r in document["markers"]],
        t_start=document["t_start"],
        t_end=document["t_end"],
    )


def run_from_payload(spec, payload: dict[str, Any]):
    """Rebuild a full :class:`~repro.bench.runner.ExperimentRun` from *spec*.

    The workload and cluster are reconstructed fresh; the measurements come
    verbatim from the payload.
    """
    from repro.bench.runner import ExperimentRun
    from repro.campaign.spec import build_cluster, build_workload

    if payload.get("schema") != PAYLOAD_SCHEMA:
        raise UncacheableRunError(
            f"payload schema {payload.get('schema')!r} != {PAYLOAD_SCHEMA}"
        )
    return ExperimentRun(
        workload=build_workload(spec.name, spec.constructor_kwargs()),
        cluster=build_cluster(spec),
        result=result_from_payload(payload["result"]),
        trace=trace_from_payload(payload.get("trace")),
        rank_to_node=list(payload["rank_to_node"]),
        telemetry=None,
    )


def summarize_payload(document: dict[str, Any]) -> dict[str, Any]:
    """The campaign summary row derivable from a payload (pure arithmetic).

    Used identically by workers, the serial fallback, and warm-store hits,
    so every path produces bit-identical rows.
    """
    from repro.units import mflops_per_watt, to_gflops

    result = document["result"]
    elapsed = result["elapsed_seconds"]
    flops = result["gpu_flops"] + result["cpu_flops"]
    throughput = flops / elapsed if elapsed else 0.0
    energy = _unpack(EnergyReport, result["energy"])
    power = energy.average_power_watts
    gpu_l2_bytes = sum(
        _unpack(KernelRecord, values).l2_bytes
        for profiler in result.get("gpu_profilers", [])
        for values in profiler["kernels"]
    )
    return {
        "runtime_seconds": elapsed,
        "gflops": to_gflops(throughput),
        "mflops_per_watt": (
            mflops_per_watt(throughput, power) if power > 0 else 0.0
        ),
        "energy_joules": energy.total_joules,
        "network_bytes": result["network_bytes"],
        "completed": not result["failures"],
        # Roofline extras: the hierarchical binding level is derivable from
        # a summary row alone (runner does the placement arithmetic).
        "gpu_flops": result.get("gpu_flops", 0.0),
        "gpu_dram_bytes": result.get("gpu_dram_bytes", 0.0),
        "gpu_l2_bytes": gpu_l2_bytes,
    }


def summarize_run(run) -> dict[str, Any]:
    """:func:`summarize_payload` for a live run (uncacheable fallback path).

    Routes through the exact same arithmetic, so rows match the persisted
    path bit for bit.
    """
    result = run.result
    return summarize_payload({
        "result": {
            "elapsed_seconds": result.elapsed_seconds,
            "energy": _pack(result.energy),
            "gpu_flops": result.gpu_flops,
            "cpu_flops": result.cpu_flops,
            "network_bytes": result.network_bytes,
            "gpu_dram_bytes": result.gpu_dram_bytes,
            "gpu_profilers": [
                {"kernels": [_pack(k) for k in p.kernels]}
                for p in result.gpu_profilers
            ],
            "failures": {str(r): t for r, t in result.failures.items()},
        },
    })
