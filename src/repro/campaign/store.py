"""The persistent result store: one JSON file per cached artifact.

Entries live under ``.repro-cache/`` (override with ``REPRO_CACHE_DIR``,
disable entirely with ``REPRO_DISK_CACHE=0``) as
``<kind>-<digest>.json`` — ``kind`` tags what the payload is (a full run,
a baseline row), ``digest`` is the :class:`~repro.campaign.spec.RunSpec`
content address.  Every entry records the code fingerprint it was written
under; a lookup whose fingerprint differs is a miss, so editing any
simulator source invalidates the whole store without any bookkeeping.

Writes are atomic (temp file + ``os.replace``) so concurrent campaign
workers can publish results without torn files.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError

#: Schema stamped into every store file; bump to orphan old layouts.
STORE_SCHEMA = 1

#: Default store directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_FALSY = ("0", "no", "off", "false")


class ResultStore:
    """A fingerprint-validated JSON store with hit/miss accounting."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, kind: str, digest: str) -> Path:
        if not kind.replace("-", "a").isidentifier():
            raise ConfigurationError(f"bad store kind {kind!r}")
        return self.root / f"{kind}-{digest}.json"

    def get(self, kind: str, digest: str, fingerprint: str) -> Any | None:
        """The payload cached for (*kind*, *digest*), or None.

        A missing file, unreadable JSON, schema mismatch, or stale
        fingerprint all count as a miss — the store is advisory, never a
        source of errors.
        """
        path = self._path(kind, digest)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if (
            not isinstance(document, dict)
            or document.get("schema") != STORE_SCHEMA
            or document.get("fingerprint") != fingerprint
        ):
            self.misses += 1
            return None
        self.hits += 1
        return document.get("payload")

    def put(self, kind: str, digest: str, fingerprint: str, payload: Any) -> Path:
        """Atomically publish *payload* under (*kind*, *digest*)."""
        path = self._path(kind, digest)
        self.root.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": STORE_SCHEMA,
            "fingerprint": fingerprint,
            "kind": kind,
            "digest": digest,
            "payload": payload,
        }
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(document, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in sorted(self.root.glob("*.json")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json"))) if self.root.is_dir() else 0


_default: ResultStore | None = None


def resolve_cache_root() -> str | None:
    """The configured store directory, or None when disabled by env."""
    if os.environ.get("REPRO_DISK_CACHE", "").strip().lower() in _FALSY:
        return None
    return os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR


def default_store() -> ResultStore | None:
    """The process-wide store for the configured root (None when disabled).

    Re-resolves the environment on every call so tests can repoint the
    store; the instance (and its hit/miss counters) is reused while the
    root stays put.
    """
    global _default
    root = resolve_cache_root()
    if root is None:
        return None
    if _default is None or str(_default.root) != str(Path(root)):
        _default = ResultStore(root)
    return _default


def reset_default_store() -> None:
    """Drop the memoized default store (tests repointing REPRO_CACHE_DIR)."""
    global _default
    _default = None
