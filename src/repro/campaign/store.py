"""The persistent result store: one JSON file per cached artifact.

Entries live under ``.repro-cache/`` (override with ``REPRO_CACHE_DIR``,
disable entirely with ``REPRO_DISK_CACHE=0``) as
``<digest[:2]>/<kind>-<digest>.json`` — ``kind`` tags what the payload is
(a full run, a baseline row), ``digest`` is the
:class:`~repro.campaign.spec.RunSpec` content address, and the two-hex
shard prefix keeps directories small under campaign-scale entry counts
(the layout the ROADMAP's serve daemon asks for).  Every entry records
the code fingerprint it was written under; a lookup whose fingerprint
differs is a miss, so editing any simulator source invalidates the whole
store without any bookkeeping.

The store is **advisory, never a source of errors** — and self-healing:

* every payload carries a content checksum; an entry whose bytes no
  longer match (bit rot, a torn write that survived, a hand edit) is
  detected on read, deleted, and reported as a miss so the run simply
  re-executes (``corrupt_repaired`` counts the repairs);
* :meth:`put` degrades gracefully on a full or read-only disk — one
  stderr advisory plus the ``put_errors`` counter, never an exception;
* writes are atomic (temp file + ``os.replace``) so concurrent campaign
  workers can publish results without torn files, and stale
  ``*.tmp.<pid>`` droppings from crashed writers are garbage-collected
  opportunistically on :meth:`put` and always on :meth:`clear`.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError

#: Schema stamped into every store file; bump to orphan old layouts.
#: v2 added the payload checksum and the digest-prefix shard layout.
STORE_SCHEMA = 2

#: Default store directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_FALSY = ("0", "no", "off", "false")


def _advise(message: str) -> None:
    """One stderr advisory line (the store never raises at callers)."""
    sys.stderr.write(f"repro store: {message}\n")


def _pid_alive(pid: int) -> bool:
    """True when *pid* is a live process we must not clean up after."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM) — leave its files alone
    return True


def _tmp_owner_pid(path: Path) -> int | None:
    """The writer pid encoded in a ``*.tmp.<pid>`` name, or None."""
    suffix = path.name.rpartition(".")[2]
    return int(suffix) if suffix.isdigit() else None


class ResultStore:
    """A fingerprint-validated, checksummed JSON store with accounting."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: Corrupted entries detected on read and deleted (self-healing).
        self.corrupt_repaired = 0
        #: Failed publishes swallowed by the advisory contract.
        self.put_errors = 0
        #: Stale temp files from crashed writers garbage-collected.
        self.tmp_collected = 0
        self._warned_degraded = False

    def _check_address(self, kind: str, digest: str) -> None:
        if not kind.replace("-", "a").isidentifier():
            raise ConfigurationError(f"bad store kind {kind!r}")
        if not digest or not digest.replace("-", "a").replace("_", "a").isalnum():
            raise ConfigurationError(f"bad store digest {digest!r}")

    def entry_path(self, kind: str, digest: str) -> Path:
        """Where (*kind*, *digest*) lives: a digest-prefix sharded path."""
        self._check_address(kind, digest)
        shard = digest[:2] if len(digest) >= 2 else "00"
        return self.root / shard / f"{kind}-{digest}.json"

    def _legacy_path(self, kind: str, digest: str) -> Path:
        """The pre-shard flat location (read-only compatibility)."""
        return self.root / f"{kind}-{digest}.json"

    # -- read path -------------------------------------------------------------

    def _repair(self, path: Path, why: str) -> None:
        """Delete a corrupt entry so the slot heals on the next put."""
        try:
            path.unlink()
        except OSError:
            return  # already gone, or unwritable: stays a plain miss
        self.corrupt_repaired += 1
        _advise(f"dropped corrupt entry {path.name} ({why}); will re-run")

    def get(self, kind: str, digest: str, fingerprint: str) -> Any | None:
        """The payload cached for (*kind*, *digest*), or None.

        A missing file, unreadable JSON, schema mismatch, stale
        fingerprint, or checksum mismatch all count as a miss — the store
        is advisory, never a source of errors.  Corrupt entries (bad JSON
        or bad checksum) are additionally deleted so the slot self-heals.
        """
        from repro.campaign.serialize import payload_checksum

        path = self.entry_path(kind, digest)
        raw: str | None = None
        for candidate in (path, self._legacy_path(kind, digest)):
            try:
                raw = candidate.read_text(encoding="utf-8")
            except OSError:
                continue
            path = candidate
            break
        if raw is None:
            self.misses += 1
            return None
        try:
            document = json.loads(raw)
        except json.JSONDecodeError:
            self._repair(path, "invalid JSON")
            self.misses += 1
            return None
        if (
            not isinstance(document, dict)
            or document.get("schema") != STORE_SCHEMA
            or document.get("fingerprint") != fingerprint
        ):
            self.misses += 1
            return None
        payload = document.get("payload")
        if document.get("checksum") != payload_checksum(payload):
            self._repair(path, "checksum mismatch")
            self.misses += 1
            return None
        self.hits += 1
        return payload

    # -- write path ------------------------------------------------------------

    def _collect_stale_tmp(self, directory: Path) -> int:
        """Remove ``*.tmp.<pid>`` droppings whose writer is dead."""
        removed = 0
        try:
            droppings = sorted(directory.glob("*.json.tmp.*"))
        except OSError:
            return 0
        for dropping in droppings:
            pid = _tmp_owner_pid(dropping)
            if pid is not None and (pid == os.getpid() or _pid_alive(pid)):
                continue  # an in-flight writer; its os.replace will land
            try:
                dropping.unlink()
            except OSError:
                continue
            removed += 1
        self.tmp_collected += removed
        return removed

    def put(
        self, kind: str, digest: str, fingerprint: str, payload: Any
    ) -> Path | None:
        """Atomically publish *payload* under (*kind*, *digest*).

        Returns the entry path, or None when the disk refused (full,
        read-only, permissions): per the advisory contract that is one
        stderr warning plus the ``put_errors`` counter, never an
        exception — the campaign keeps its results in memory and moves on.
        """
        from repro.campaign.serialize import payload_checksum

        path = self.entry_path(kind, digest)
        document = {
            "schema": STORE_SCHEMA,
            "fingerprint": fingerprint,
            "kind": kind,
            "digest": digest,
            "checksum": payload_checksum(payload),
            "payload": payload,
        }
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            self._collect_stale_tmp(path.parent)
            tmp.write_text(
                json.dumps(document, sort_keys=True) + "\n", encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError as exc:
            self.put_errors += 1
            if not self._warned_degraded:
                self._warned_degraded = True
                _advise(
                    f"degraded: cannot publish {path.name} ({exc}); "
                    f"results stay in memory only"
                )
            try:
                tmp.unlink()
            except OSError:
                pass
            return None
        return path

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry *and* stale temp file; returns the number removed.

        Unlike :meth:`put`'s opportunistic pass, ``clear`` collects every
        ``*.tmp.<pid>`` dropping regardless of writer liveness — it is the
        "wipe the cache" operation.
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        victims = sorted(self.root.rglob("*.json")) + sorted(
            self.root.rglob("*.json.tmp.*")
        )
        for path in victims:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # non-empty (journals, foreign files): keep
        return removed

    def __len__(self) -> int:
        """Entry count (temp droppings and journals excluded)."""
        return len(list(self.root.rglob("*.json"))) if self.root.is_dir() else 0


_default: ResultStore | None = None


def resolve_cache_root() -> str | None:
    """The configured store directory, or None when disabled by env."""
    if os.environ.get("REPRO_DISK_CACHE", "").strip().lower() in _FALSY:
        return None
    return os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR


def default_store() -> ResultStore | None:
    """The process-wide store for the configured root (None when disabled).

    Re-resolves the environment on every call so tests can repoint the
    store; the instance (and its hit/miss counters) is reused while the
    root stays put.
    """
    global _default
    root = resolve_cache_root()
    if root is None:
        return None
    if _default is None or str(_default.root) != str(Path(root)):
        _default = ResultStore(root)
    return _default


def reset_default_store() -> None:
    """Drop the memoized default store (tests repointing REPRO_CACHE_DIR)."""
    global _default
    _default = None
