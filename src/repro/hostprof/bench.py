"""Host-throughput measurement: ``repro profile`` and ``BENCH_HOST.json``.

``BENCH_seed.json`` gates the *performance model* (simulated numbers);
this module gates the *simulator* — how much activity a fixed workload set
generates and, advisorily, how fast the host chews through it.  The split
mirrors the two-clock rule:

* ``counts`` — events, process switches, flow rounds, MPI hops, span
  emissions, and heap/flow high-water marks per workload, measured on
  the ground-truth DES.  Functions of the workload alone, hard-gated
  exactly (any drift means a change altered how much work the kernel
  does, which is precisely what a perf-oriented PR needs to see).
* ``fast_counts`` — the same fields measured with the fast-path engine
  enabled.  Also deterministic and hard-gated: the fast-path-hit
  counters (``fastpath_grants`` / ``fastpath_transfers``) must stay
  nonzero for eligible workloads, and the event total must stay below
  the DES one — a silent eligibility regression shows up here as an
  exact-count drift.
* ``advisory`` — wall seconds, sim-seconds per wall-second, events per
  wall-second (both modes, plus the fast/DES speedup ratio), and sweep
  runs per minute.  Machine-dependent; recorded for trend-reading,
  never gated.

Runs are always cold (a profiler observes real execution, not a cache
hit), with a telemetry sink attached so span-emission cost is included in
what is being profiled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.hostprof.clock import HostClock, Stopwatch
from repro.hostprof.profiler import HostProfiler, format_hotspot_table

#: Schema version stamped into every BENCH_HOST.json.
#: v2 added the hard-gated ``fast_counts`` section and the fast-path
#: advisory fields.
HOST_SCHEMA = 2

#: The fixed throughput set: two GPGPU codes plus one NPB CPU code, small
#: enough to finish in CI seconds but exercising fabric + MPI + telemetry.
PROFILE_WORKLOADS = ("cloverleaf", "jacobi", "cg")

_PROFILE_NODES = 4
_PROFILE_NETWORK = "10G"


@dataclass
class ProfileRun:
    """One profiled cold run: the workload identity plus its profiler."""

    name: str
    nodes: int
    network: str
    sim_seconds: float
    profiler: HostProfiler
    #: Whether the run was dispatched onto the fast-path engine.
    fast_path: bool = False

    @property
    def wall_seconds(self) -> float:
        """Total advisory wall time the profiler charged to this run."""
        return sum(self.profiler.wall.values())


def profile_workload(
    name: str,
    nodes: int = _PROFILE_NODES,
    network: str = _PROFILE_NETWORK,
    clock: HostClock | None = None,
    fast_path: bool = False,
) -> ProfileRun:
    """Run *name* cold with a :class:`HostProfiler` attached.

    The profiler is attached to the cluster's environment before the run
    starts, so every event dispatch is observed; a telemetry sink rides
    along so span churn is part of the measured work.  All wall-clock
    readings stay inside the profiler (*clock* is injectable for tests).
    """
    from repro.campaign.spec import RunSpec, build_cluster, build_workload
    from repro.telemetry.sink import Telemetry
    from repro.workloads import ALL_NAMES

    if name not in ALL_NAMES:
        raise ConfigurationError(
            f"unknown workload {name!r}; known workloads: "
            f"{', '.join(sorted(ALL_NAMES))}"
        )
    spec = RunSpec.normalize(name, nodes=nodes, network=network)
    workload = build_workload(spec.name, spec.constructor_kwargs())
    profiler = HostProfiler(clock=clock)
    with profiler.section("build"):
        cluster = build_cluster(spec)
        cluster.env.set_host_profiler(profiler)
        telemetry = Telemetry(sample_interval=0.0)
    rpn = spec.ranks_per_node
    with profiler.section("run"):
        result = workload.run_on(
            cluster, ranks_per_node=rpn, tracer=None, telemetry=telemetry,
            fast_path=fast_path,
        )
    profiler.finish()
    return ProfileRun(
        name=name,
        nodes=nodes,
        network=network,
        sim_seconds=result.elapsed_seconds,
        profiler=profiler,
        fast_path=fast_path,
    )


def collect_host_baseline(
    workloads: tuple[str, ...] = PROFILE_WORKLOADS,
    nodes: int = _PROFILE_NODES,
    network: str = _PROFILE_NETWORK,
    clock: HostClock | None = None,
) -> tuple[dict[str, Any], list[ProfileRun]]:
    """Measure the host-throughput baseline for *workloads*.

    Returns the BENCH_HOST.json document plus the underlying profiled
    runs (the CLI renders the hotspot Markdown report from the latter).
    """
    total = Stopwatch(clock=clock)
    counts: dict[str, Any] = {}
    fast_counts: dict[str, Any] = {}
    advisory: dict[str, Any] = {}
    runs: list[ProfileRun] = []
    for name in workloads:
        run = profile_workload(name, nodes=nodes, network=network, clock=clock)
        fast = profile_workload(
            name, nodes=nodes, network=network, clock=clock, fast_path=True
        )
        runs.append(run)
        runs.append(fast)
        counts[name] = run.profiler.deterministic_counts()
        fast_counts[name] = fast.profiler.deterministic_counts()
        wall = run.wall_seconds
        fast_wall = fast.wall_seconds
        advisory[name] = {
            "wall_seconds": wall,
            "sim_seconds": run.sim_seconds,
            "sim_seconds_per_wall_second": (
                run.sim_seconds / wall if wall > 0 else 0.0
            ),
            "events_per_wall_second": (
                run.profiler.counters["events"] / wall if wall > 0 else 0.0
            ),
            "fast_wall_seconds": fast_wall,
            "fast_sim_seconds_per_wall_second": (
                fast.sim_seconds / fast_wall if fast_wall > 0 else 0.0
            ),
            "fast_events_per_wall_second": (
                fast.profiler.counters["events"] / fast_wall
                if fast_wall > 0 else 0.0
            ),
            "fast_speedup": wall / fast_wall if fast_wall > 0 else 0.0,
        }
    elapsed = total.elapsed()
    sweep = {
        "runs_per_minute": len(runs) * 60.0 / elapsed if elapsed > 0 else 0.0,
    }
    document = {
        "schema": HOST_SCHEMA,
        "config": {"nodes": nodes, "network": network},
        "counts": counts,
        "fast_counts": fast_counts,
        "advisory": advisory,
        "sweep": sweep,
    }
    return document, runs


def write_host_baseline(path: str | Path, baseline: dict[str, Any]) -> Path:
    """Serialize *baseline* byte-stably (sorted keys, trailing newline)."""
    path = Path(path)
    path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_host_baseline(path: str | Path) -> dict[str, Any]:
    """Read a BENCH_HOST.json file, validating its schema."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(
            f"host baseline {path} does not exist; write one first with "
            f"`python -m repro profile --bench --baseline {path}`"
        )
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("schema") != HOST_SCHEMA:
        raise ConfigurationError(
            f"host baseline {path} has schema {document.get('schema')!r}, "
            f"expected {HOST_SCHEMA}"
        )
    return document


def compare_host_baseline(
    baseline: dict[str, Any], current: dict[str, Any]
) -> list[str]:
    """Drifted deterministic count fields, deterministically ordered.

    The ``counts`` (DES) and ``fast_counts`` (fast-path) sections both
    participate — these are exact-match integers, and the fast section's
    fastpath-hit counters are the CI gate proving the engine still
    engages.  The ``advisory`` section is machine-dependent by contract
    and never compared.
    """
    drifts: list[str] = []
    for section in ("counts", "fast_counts"):
        base_counts = baseline.get(section, {})
        curr_counts = current.get(section, {})
        prefix = "" if section == "counts" else "fast."
        for workload in sorted(set(base_counts) | set(curr_counts)):
            base_row = base_counts.get(workload)
            curr_row = curr_counts.get(workload)
            if base_row is None or curr_row is None:
                state = "missing" if curr_row is None else "new"
                drifts.append(
                    f"{prefix}{workload}: workload {state} in current "
                    "measurement"
                )
                continue
            for field in sorted(set(base_row) | set(curr_row)):
                expected = base_row.get(field)
                observed = curr_row.get(field)
                if expected != observed:
                    drifts.append(
                        f"{prefix}{workload}.{field}: {expected!r} -> "
                        f"{observed!r}"
                    )
    return drifts


def format_host_check(drifts: list[str]) -> str:
    """Human-readable drift summary for the CLI."""
    if not drifts:
        return "host profile check: all deterministic count fields match"
    lines = [
        f"host profile check: {len(drifts)} deterministic count field(s) "
        "drifted (the workload set now generates different kernel "
        "activity; rerun `python -m repro profile --bench` and commit "
        "BENCH_HOST.json if intentional):"
    ]
    lines += [f"  {drift}" for drift in drifts]
    return "\n".join(lines)


def format_host_report_markdown(runs: list[ProfileRun]) -> str:
    """The hotspot Markdown report CI uploads as an artifact."""
    lines = ["# Host profile — per-subsystem hotspots", ""]
    lines.append(
        "Wall columns are advisory (machine-dependent); call counts are "
        "deterministic for the fixed workload set."
    )
    for run in runs:
        mode = "fast path" if run.fast_path else "full DES"
        lines.append("")
        lines.append(
            f"## {run.name} (nodes={run.nodes}, {run.network}, {mode})"
        )
        lines.append("")
        wall = run.wall_seconds
        rate = run.sim_seconds / wall if wall > 0 else 0.0
        lines.append(
            f"sim {run.sim_seconds:.6f} s in {wall:.4f} wall s "
            f"({rate:.1f} sim-s/wall-s)"
        )
        lines.append("")
        lines.append("```")
        lines.append(format_hotspot_table(run.profiler))
        lines.append("```")
    return "\n".join(lines) + "\n"
