"""Host-side observability for the simulator itself.

Everything else in this tree measures the *simulated* machine on the
simulated clock; this package measures the *simulator* on the host clock —
where wall-time goes in the DES kernel, how many events a workload
generates, and how a campaign's workers spend their hours.  It is the only
package allowed to read the wall clock (``wallclock-exempt`` /
``taint-exempt`` in pyproject.toml scope RL001/RL100 to it), and the
clock-domain lint rule (RL500) keeps the dependency arrow one-way:
simulation-domain packages never import from here.

The benchmark driver lives in :mod:`repro.hostprof.bench` (imported
lazily by the CLI so ``import repro.hostprof`` stays dependency-light).
"""

from repro.hostprof.campaign import CampaignHostRecorder, write_host_trace
from repro.hostprof.clock import HostClock, Stopwatch, read_clock
from repro.hostprof.profiler import (
    MODE_DISPATCH,
    MODE_OTHER,
    MODE_PROCESS,
    HostProfiler,
    format_hotspot_table,
)

__all__ = [
    "CampaignHostRecorder",
    "HostClock",
    "HostProfiler",
    "MODE_DISPATCH",
    "MODE_OTHER",
    "MODE_PROCESS",
    "Stopwatch",
    "format_hotspot_table",
    "read_clock",
    "write_host_trace",
]
