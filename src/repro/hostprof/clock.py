"""The host clock: the single wall-clock read site in the tree.

``repro.telemetry`` records *simulated* time only — RL001 bans wall-clock
reads everywhere else — so host-side profiling needs exactly one blessed
door to the real clock.  This module is that door: ``read_clock`` wraps
``time.perf_counter`` and everything else in :mod:`repro.hostprof` takes
its timestamps through it (or through an injected fake, which is how the
tests stay deterministic).

The lint configuration scopes the wall-clock exemption to this package
(``wallclock-exempt`` in pyproject.toml) and the clock-domain rule (RL500)
rejects any simulation-domain import of it, so the dependency arrow only
ever points from host observability *into* the simulator, never back.
"""

from __future__ import annotations

import time
from typing import Callable

#: Signature of an injectable host clock: () -> seconds (monotonic).
HostClock = Callable[[], float]


def read_clock() -> float:
    """Current host time in seconds from a monotonic origin.

    This is the only function in the tree that reads the wall clock; the
    value must never reach a simulated result (RL100 enforces this for
    every module outside ``repro.hostprof``).
    """
    return time.perf_counter()


class Stopwatch:
    """A tiny interval timer over an injectable host clock.

    Values stay inside the instance until a caller asks for them via
    :meth:`elapsed`, which keeps wall-clock taint out of module-level
    data flow in non-exempt callers (campaign workers time themselves
    with one of these).
    """

    __slots__ = ("_clock", "_started")

    def __init__(self, clock: HostClock | None = None) -> None:
        self._clock = clock if clock is not None else read_clock
        self._started = self._clock()

    def restart(self) -> None:
        """Reset the interval origin to now."""
        self._started = self._clock()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return self._clock() - self._started
