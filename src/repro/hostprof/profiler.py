""":class:`HostProfiler` — where does the simulator's *own* wall time go?

The profiler rides the same nullable-hook pattern the telemetry sink uses
on the DES hot paths: ``Environment.host_profiler`` defaults to ``None``
and every instrumented site pays one identity check when profiling is off.
When attached, the kernel reports each event dispatch and process switch,
the fabric reports flow-rate recomputation rounds, the MPI layer reports
generator hops, and the telemetry sink reports span/sample emission.

Two kinds of data come out:

* **deterministic counts** — events, switches, flow rounds, hops, span
  emissions, and the heap-depth/active-flow high-water marks.  These are
  functions of the workload alone, so CI gates them exactly
  (``BENCH_HOST.json``).
* **wall-time attribution** — a self-time state machine charges each
  host-clock interval to the subsystem that was running (event dispatch
  vs. generator execution vs. everything else), and inclusive
  :meth:`~HostProfiler.section` timers cover coarse driver phases.  Wall
  times are machine-dependent and therefore only ever advisory.

The clock is injectable (tests pass a fake), and all readings stay inside
the instance: callers outside ``repro.hostprof`` consume them through
methods, never through module-level clock reads.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.hostprof.clock import HostClock, read_clock

#: Attribution buckets for the self-time state machine.
MODE_DISPATCH = "sim.dispatch"
MODE_PROCESS = "process.run"
MODE_OTHER = "host.other"


class HostProfiler:
    """Low-overhead host-side profiler for one simulation run.

    Attach with :meth:`repro.sim.core.Environment.set_host_profiler`; the
    kernel, fabric, MPI, and telemetry hooks then report into it.  One
    profiler observes one run (or one driver phase sequence) — counts are
    cumulative from construction.
    """

    def __init__(self, clock: HostClock | None = None) -> None:
        self._clock = clock if clock is not None else read_clock
        #: Monotonic activity counters; all deterministic for a fixed workload.
        self.counters: dict[str, int] = {
            "events": 0,
            "process_switches": 0,
            "processes": 0,
            "fabric_flow_rounds": 0,
            "fastpath_grants": 0,
            "fastpath_transfers": 0,
            "mpi_hops": 0,
            "telemetry_spans": 0,
            "telemetry_samples": 0,
        }
        #: Peak structure sizes observed (deterministic too).
        self.high_water: dict[str, int] = {
            "heap_depth": 0,
            "active_flows": 0,
        }
        #: Exclusive (self-time) wall seconds per attribution mode.
        self.wall: dict[str, float] = {
            MODE_DISPATCH: 0.0,
            MODE_PROCESS: 0.0,
            MODE_OTHER: 0.0,
        }
        #: Inclusive section timers: name -> {"seconds", "calls"}.
        self.sections: dict[str, dict[str, float]] = {}
        self._mode = MODE_OTHER
        self._mark = self._clock()

    # -- self-time state machine --------------------------------------------

    def _charge(self, mode: str) -> None:
        """Charge the interval since the last transition to the old mode."""
        now = self._clock()
        self.wall[self._mode] += now - self._mark
        self._mode = mode
        self._mark = now

    def finish(self) -> None:
        """Flush the open interval (call once when the observed run ends)."""
        self._charge(MODE_OTHER)

    # -- DES kernel hooks -----------------------------------------------------

    def event_dispatched(self, heap_depth: int) -> None:
        """One event popped off the kernel queue (*heap_depth* before the pop)."""
        self.counters["events"] += 1
        if heap_depth > self.high_water["heap_depth"]:
            self.high_water["heap_depth"] = heap_depth
        self._charge(MODE_DISPATCH)

    def process_resumed(self) -> None:
        """A generator process is about to run."""
        self.counters["process_switches"] += 1
        self._charge(MODE_PROCESS)

    def process_spawned(self) -> None:
        """A new process was created on the environment."""
        self.counters["processes"] += 1

    # -- subsystem hooks -------------------------------------------------------

    def flow_round(self, active_flows: int) -> None:
        """The fabric recomputed a flow's share (*active_flows* now live)."""
        self.counters["fabric_flow_rounds"] += 1
        if active_flows > self.high_water["active_flows"]:
            self.high_water["active_flows"] = active_flows

    def mpi_hop(self) -> None:
        """One MPI-layer generator hop (send/recv/collective step)."""
        self.counters["mpi_hops"] += 1

    def fastpath_grant(self) -> None:
        """A resource slot or store item was granted inline (no event)."""
        self.counters["fastpath_grants"] += 1

    def fastpath_transfer(self) -> None:
        """The fabric completed one transfer on the analytical timeline."""
        self.counters["fastpath_transfers"] += 1

    def span_emitted(self) -> None:
        """The telemetry sink finished (allocated) one span record."""
        self.counters["telemetry_spans"] += 1

    def sample_emitted(self) -> None:
        """The telemetry sink appended one time-series sample."""
        self.counters["telemetry_samples"] += 1

    # -- inclusive sections ----------------------------------------------------

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Inclusive wall timer for a coarse driver phase (build/run/report)."""
        start = self._clock()
        try:
            yield
        finally:
            entry = self.sections.setdefault(name, {"seconds": 0.0, "calls": 0})
            entry["seconds"] += self._clock() - start
            entry["calls"] += 1

    # -- reports ---------------------------------------------------------------

    def deterministic_counts(self) -> dict[str, int]:
        """The exactly-reproducible fields (what BENCH_HOST.json hard-gates)."""
        counts = dict(self.counters)
        counts["heap_depth_high_water"] = self.high_water["heap_depth"]
        counts["active_flows_high_water"] = self.high_water["active_flows"]
        return counts

    def report(self) -> dict[str, Any]:
        """Everything measured, as plain data (counts exact, wall advisory)."""
        return {
            "counts": self.deterministic_counts(),
            "wall_seconds": dict(self.wall),
            "sections": {
                name: dict(entry) for name, entry in sorted(self.sections.items())
            },
        }

    def hotspot_rows(self) -> list[tuple[str, int, float]]:
        """(subsystem, calls, exclusive wall seconds), hottest first.

        Counter-only subsystems (fabric, MPI, telemetry) execute inside
        ``process.run`` and carry no exclusive wall time of their own; they
        appear with 0.0 so the call volume still ranks.
        """
        rows = [
            (MODE_DISPATCH, self.counters["events"], self.wall[MODE_DISPATCH]),
            (MODE_PROCESS, self.counters["process_switches"],
             self.wall[MODE_PROCESS]),
            (MODE_OTHER, 0, self.wall[MODE_OTHER]),
            ("network.flow_rounds", self.counters["fabric_flow_rounds"], 0.0),
            ("fastpath.grants", self.counters["fastpath_grants"], 0.0),
            ("fastpath.transfers", self.counters["fastpath_transfers"], 0.0),
            ("mpi.hops", self.counters["mpi_hops"], 0.0),
            ("telemetry.spans", self.counters["telemetry_spans"], 0.0),
            ("telemetry.samples", self.counters["telemetry_samples"], 0.0),
        ]
        rows.sort(key=lambda row: (-row[2], -row[1], row[0]))
        return rows


def format_hotspot_table(profiler: HostProfiler) -> str:
    """The per-subsystem hotspot table ``repro profile`` prints.

    Wall columns are advisory (machine-dependent); the calls column is
    deterministic for a fixed workload.
    """
    rows = profiler.hotspot_rows()
    total = sum(seconds for _, _, seconds in rows)
    lines = [
        f"{'subsystem':<22} {'calls':>12} {'wall_s':>10} {'share':>7}",
        "-" * 54,
    ]
    for subsystem, calls, seconds in rows:
        share = (seconds / total * 100.0) if total > 0 else 0.0
        lines.append(
            f"{subsystem:<22} {calls:>12} {seconds:>10.4f} {share:>6.1f}%"
        )
    lines.append("-" * 54)
    total_share = 100.0 if total > 0 else 0.0
    lines.append(f"{'total':<22} {'':>12} {total:>10.4f} {total_share:>6.1f}%")
    return "\n".join(lines)
