"""Campaign-level host observability: where do sweep wall-hours go?

A :class:`CampaignHostRecorder` rides the supervisor's decision points —
submit and completion — and derives, per spec, how long it sat on the host
(wall), how long a worker actually chewed on it (busy, measured in the
worker process itself), and the difference (queue wait).  Workers get
dense lanes in first-seen order, which makes the utilization timeline
renderable as a Chrome trace with one lane per worker — reusing the
simulated-time exporters on a *separate clock domain* (the trace header
says so: ``timebase: host-monotonic``).

Everything here is advisory by construction: the recorder observes the
campaign, never steers it, so a sweep's tables and caches are
byte-identical with or without one attached.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.hostprof.clock import HostClock, read_clock


class CampaignHostRecorder:
    """Per-spec wall/queue-wait/busy timings for one campaign.

    All host-clock reads stay behind instance methods (the clock is
    injectable for deterministic tests); timestamps are seconds since the
    recorder was constructed, so traces start near the origin.
    """

    def __init__(self, clock: HostClock | None = None) -> None:
        self._clock = clock if clock is not None else read_clock
        self._t0 = self._clock()
        #: digest -> timing record (insertion = submission order).
        self.records: dict[str, dict[str, Any]] = {}
        #: worker pid -> dense lane index, first-seen order.
        self.worker_lanes: dict[int, int] = {}

    def _now(self) -> float:
        return self._clock() - self._t0

    # -- supervisor hooks ------------------------------------------------------

    def spec_submitted(self, digest: str, label: str) -> None:
        """A spec entered the execution queue (or started, when serial)."""
        self.records[digest] = {
            "label": label,
            "submitted": self._now(),
            "finished": None,
            "wall_seconds": None,
            "busy_seconds": None,
            "queue_wait_seconds": None,
            "worker": None,
        }

    def spec_done(
        self, digest: str, worker_pid: int, busy_seconds: float | None = None
    ) -> None:
        """A spec completed on *worker_pid*.

        *busy_seconds* is the worker-side measurement (a
        :class:`~repro.hostprof.clock.Stopwatch` around the task body);
        when the transport did not carry one, busy defaults to the full
        wall interval and the queue wait reads as zero.
        """
        record = self.records.get(digest)
        if record is None:  # done without submit: synthesize a zero-start row
            self.spec_submitted(digest, digest)
            record = self.records[digest]
        lane = self.worker_lanes.setdefault(worker_pid, len(self.worker_lanes))
        finished = self._now()
        wall = max(0.0, finished - record["submitted"])
        busy = wall if busy_seconds is None else min(max(0.0, busy_seconds), wall)
        record.update(
            finished=finished,
            wall_seconds=wall,
            busy_seconds=busy,
            queue_wait_seconds=max(0.0, wall - busy),
            worker=lane,
        )

    # -- outputs ---------------------------------------------------------------

    def journal_entry(self, digest: str) -> dict[str, Any] | None:
        """The host-timing dict journaled beside a spec's outcome."""
        record = self.records.get(digest)
        if record is None or record["finished"] is None:
            return None
        return {
            "wall_seconds": record["wall_seconds"],
            "queue_wait_seconds": record["queue_wait_seconds"],
            "busy_seconds": record["busy_seconds"],
            "worker": record["worker"],
        }

    def register_metrics(self, registry) -> None:
        """Surface the timings as ``campaign_host_*`` Registry metrics."""
        wall = registry.gauge(
            "campaign_host_wall_seconds",
            "host wall time from submission to completion, per spec",
            unit="s", labelnames=("spec",),
        )
        wait = registry.gauge(
            "campaign_host_queue_wait_seconds",
            "host time a spec waited for a worker, per spec",
            unit="s", labelnames=("spec",),
        )
        busy = registry.gauge(
            "campaign_host_worker_busy_seconds",
            "summed task-execution wall time, per worker lane",
            unit="s", labelnames=("worker",),
        )
        lanes = registry.gauge(
            "campaign_host_workers",
            "distinct worker processes that completed at least one spec",
        )
        per_worker: dict[int, float] = {}
        for record in self.records.values():
            if record["finished"] is None:
                continue
            wall.set(record["wall_seconds"], spec=record["label"])
            wait.set(record["queue_wait_seconds"], spec=record["label"])
            lane = record["worker"]
            per_worker[lane] = per_worker.get(lane, 0.0) + record["busy_seconds"]
        for lane, seconds in sorted(per_worker.items()):
            busy.set(seconds, worker=f"worker{lane}")
        lanes.set(len(self.worker_lanes))

    def to_trace_document(self) -> dict[str, Any]:
        """Chrome trace-event JSON: one lane per worker, host timebase.

        Reuses :func:`repro.telemetry.exporters.to_chrome_trace` by
        staging the busy intervals on a throwaway (unbound) sink, then
        re-stamps the header for the host clock domain so nobody mistakes
        the lanes for simulated time.
        """
        from repro.telemetry.exporters import to_chrome_trace
        from repro.telemetry.sink import Telemetry

        staging = Telemetry(sample_interval=0.0)
        for record in self.records.values():
            if record["finished"] is None:
                continue
            finished = record["finished"]
            start = max(0.0, finished - record["busy_seconds"])
            staging.record_span(
                f"worker{record['worker']}", record["label"], "campaign",
                start, finished,
                queue_wait_seconds=record["queue_wait_seconds"],
            )
        document = to_chrome_trace(staging)
        document["otherData"] = {
            "generator": "repro.hostprof",
            "timebase": "host-monotonic",
        }
        return document


def write_host_trace(recorder: CampaignHostRecorder, stream: IO[str]) -> None:
    """Serialize the recorder's worker-lane trace byte-stably."""
    json.dump(recorder.to_trace_document(), stream,
              sort_keys=True, separators=(",", ":"))
    stream.write("\n")
