"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a hardware/cluster/workload configuration is invalid.

    Also a :class:`ValueError` so pre-taxonomy callers (and tests) that
    catch ``ValueError`` keep working.
    """


class CudaError(ReproError):
    """Raised by the simulated CUDA runtime (bad handles, OOM, misuse)."""


class NetworkError(ReproError):
    """Raised by the network fabric (detached endpoints, link misuse)."""


class MessageLostError(NetworkError):
    """Raised when a transfer completed its wire time but the payload was
    dropped (lossy link or flap window under fault injection)."""


class NodeFailure(ReproError):
    """A node crashed.

    Raised by the fabric when a transfer touches a dead endpoint, and thrown
    into the rank generators resident on the node when a
    :class:`repro.faults.FaultInjector` fires a crash.
    """

    def __init__(self, node_id: int, message: str | None = None) -> None:
        super().__init__(message or f"node {node_id} has failed")
        self.node_id = node_id


class MPIError(ReproError):
    """Raised by the simulated MPI layer (bad ranks, mismatched buffers)."""


class MPITimeoutError(MPIError):
    """A send or receive exceeded its (simulated-time) timeout budget,
    including any configured retries."""


class RankFailedError(MPIError):
    """A communication peer is dead; collectives use this to fail fast with
    the dead rank identified."""

    def __init__(self, rank: int, message: str | None = None) -> None:
        super().__init__(message or f"rank {rank} has failed")
        self.rank = rank


class CampaignError(ReproError):
    """Raised by the campaign layer (supervised execution, journals)."""


class WorkerLostError(CampaignError):
    """A campaign worker process died or hung mid-run.

    Used to label attempts lost to a ``BrokenProcessPool`` or a per-task
    timeout; the supervisor recovers (rebuilds the pool, resubmits the
    lost specs) rather than letting this propagate.
    """


class SpecQuarantinedError(CampaignError):
    """One or more specs exhausted their retry budget and were quarantined.

    ``run_campaign`` never raises this itself — a campaign *completes*
    with ``completed=False`` rows naming the quarantined specs.  Callers
    that want strict semantics raise it via
    :meth:`~repro.campaign.runner.CampaignResult.raise_for_failures`.
    """


class TraceError(ReproError):
    """Raised when a trace is malformed or an analysis precondition fails."""


class TelemetryError(ReproError):
    """Raised by the telemetry layer (bad instruments, label mismatches,
    sink misuse).  Never raised on the disabled-sink fast path."""


class AnalysisError(ReproError, ValueError):
    """Raised by statistical analysis routines (PLS, fitting).

    Also a :class:`ValueError` for the same compatibility reason as
    :class:`ConfigurationError`.
    """
