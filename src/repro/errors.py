"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a hardware/cluster/workload configuration is invalid.

    Also a :class:`ValueError` so pre-taxonomy callers (and tests) that
    catch ``ValueError`` keep working.
    """


class CudaError(ReproError):
    """Raised by the simulated CUDA runtime (bad handles, OOM, misuse)."""


class MPIError(ReproError):
    """Raised by the simulated MPI layer (bad ranks, mismatched buffers)."""


class TraceError(ReproError):
    """Raised when a trace is malformed or an analysis precondition fails."""


class AnalysisError(ReproError, ValueError):
    """Raised by statistical analysis routines (PLS, fitting).

    Also a :class:`ValueError` for the same compatibility reason as
    :class:`ConfigurationError`.
    """
