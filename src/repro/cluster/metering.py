"""Cluster-level energy accounting (the AC-socket meter)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import cluster as _cluster_mod
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one run."""

    elapsed_seconds: float
    node_joules: float  # idle + CPU + GPU dynamic across all nodes
    nic_joules: float  # expansion-NIC adders
    switch_joules: float

    @property
    def total_joules(self) -> float:
        """What the paper's per-system socket meters integrate: the nodes
        and their NICs.  Switch energy is tracked separately (shared
        infrastructure, not behind the per-system meters)."""
        return self.node_joules + self.nic_joules

    @property
    def average_power_watts(self) -> float:
        """Mean power over the run."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_joules / self.elapsed_seconds


class Metering:
    """Reads the per-node power accumulators and closes the integral."""

    def __init__(self, cluster: "_cluster_mod.Cluster") -> None:
        self.cluster = cluster

    def report(self, elapsed_seconds: float) -> EnergyReport:
        """Energy over *elapsed_seconds*, including NIC and switch adders.

        NIC draw scales with each node's link utilization between the card's
        idle and active power (real 10 GbE cards idle well below their
        active ~5 W figure).
        """
        node_joules = sum(
            node.power.energy_joules(elapsed_seconds) for node in self.cluster.nodes
        )
        nic_joules = 0.0
        for node in self.cluster.nodes:
            if elapsed_seconds > 0:
                moved = node.network_bytes_sent + node.network_bytes_received
                utilization = min(
                    1.0, moved / (node.nic.achievable_rate * elapsed_seconds)
                )
            else:
                utilization = 0.0
            nic_joules += node.nic.power_at(utilization) * elapsed_seconds
        switch_joules = self.cluster.spec.switch.power_watts * elapsed_seconds
        return EnergyReport(
            elapsed_seconds=elapsed_seconds,
            node_joules=node_joules,
            nic_joules=nic_joules,
            switch_joules=switch_joules,
        )

    def sample_trace(self, elapsed_seconds: float, hz: float = 10.0) -> list[float]:
        """A time-resolved power trace like the paper's AC-socket meter log.

        Samples the cluster's instantaneous draw (node baselines + the CPU/
        GPU busy intervals recorded during the run + the NICs' average draw)
        at *hz* — the paper's meter sampled at 10 Hz.
        """
        if elapsed_seconds <= 0:
            raise ConfigurationError("elapsed time must be positive")
        report = self.report(elapsed_seconds)
        nic_watts = report.nic_joules / elapsed_seconds
        n = max(1, int(elapsed_seconds * hz))
        samples = []
        for i in range(n):
            t = (i + 0.5) / hz
            nodes = sum(node.power.power_at(t) for node in self.cluster.nodes)
            samples.append(nodes + nic_watts)
        return samples
