"""Job launcher: runs one workload generator per MPI rank on a cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.metering import EnergyReport, Metering
from repro.cuda.events import Profiler
from repro.cuda.runtime import CudaContext
from repro.errors import (
    ConfigurationError,
    MessageLostError,
    MPITimeoutError,
    NodeFailure,
    RankFailedError,
    SimulationError,
)
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultSchedule
from repro.hardware.cpu import CoreExecution, WorkloadCPUProfile
from repro.hardware.node import Node
from repro.mpi import Communicator, CommWorld, RetryPolicy
from repro.telemetry.sampler import UtilizationSampler
from repro.telemetry.sink import NULL
from repro.units import mflops_per_watt as units_mflops_per_watt

#: The typed failures a degraded-mode job absorbs instead of propagating.
FAULT_ERRORS = (NodeFailure, RankFailedError, MPITimeoutError, MessageLostError)


@dataclass
class RankCounters:
    """PMU-style accumulators for one rank (perf-like totals)."""

    cycles: float = 0.0
    instructions: float = 0.0
    instructions_speculative: float = 0.0
    branches: float = 0.0
    branch_mispredictions: float = 0.0
    mem_ops: float = 0.0
    l1d_misses: float = 0.0
    l2_misses: float = 0.0
    l2_accesses: float = 0.0
    frontend_stall_cycles: float = 0.0
    backend_stall_cycles: float = 0.0
    cpu_flops: float = 0.0
    compute_seconds: float = 0.0
    gpu_seconds: float = 0.0

    def absorb(self, run: CoreExecution) -> None:
        """Fold one core-execution block into the totals."""
        self.cycles += run.cycles
        self.instructions += run.instructions_retired
        self.instructions_speculative += run.instructions_speculative
        self.branches += run.branches
        self.branch_mispredictions += run.branch_mispredictions
        self.mem_ops += run.mem_ops
        self.l1d_misses += run.l1d_misses
        self.l2_misses += run.l2_misses
        self.l2_accesses += run.l2_accesses
        self.frontend_stall_cycles += run.frontend_stall_cycles
        self.backend_stall_cycles += run.backend_stall_cycles
        self.cpu_flops += run.flops
        self.compute_seconds += run.seconds


class RankContext:
    """Everything one rank needs: comm, CUDA, CPU charging, tracing."""

    def __init__(
        self,
        job: "Job",
        rank: int,
        node: Node,
        comm: Communicator,
        cuda: CudaContext | None,
    ) -> None:
        self.job = job
        self.rank = rank
        self.node = node
        self.comm = comm
        self.cuda = cuda
        self.env = node.env
        self.counters = RankCounters()

    @property
    def size(self) -> int:
        """World size."""
        return self.comm.size

    def cpu_compute(self, profile: WorkloadCPUProfile, instructions: float,
                    state: str = "compute"):
        """Generator: run *instructions* on one core of this rank's node.

        Acquires a core slot (ranks beyond the core count contend), charges
        time and power, and accumulates PMU counters.  ``state`` labels the
        trace burst; use ``"overlap"`` for work that runs concurrently with
        other local work so the sequential replay engine skips it.
        """
        node = self.node
        sharers = self.job.ranks_on_node(node.node_id)
        with node.cores.request() as slot:
            yield slot
            run = node.cpu_model.execute(profile, instructions, active_sharers=sharers)
            start = self.env.now
            yield self.env.timeout(run.seconds * self.job.jitter(self.rank))
            node.power.add_cpu_busy(self.env.now - start, start=start)
        self.counters.absorb(run)
        node.dram.record_cpu_traffic(run.l2_misses * node.spec.caches.l2.line_bytes)
        self.job.record_state(self.rank, state, start, self.env.now)
        return run

    def gpu_kernel(self, kernel, *, bypass_cache: bool = False, stream=None):
        """Generator: launch a kernel on this rank's node GPU."""
        if self.cuda is None:
            raise ConfigurationError("this node has no GPU")
        start = self.env.now
        record = yield from self.cuda.launch(kernel, bypass_cache=bypass_cache, stream=stream)
        self.counters.gpu_seconds += record.seconds
        self.job.record_state(self.rank, "gpu", start, self.env.now)
        return record


@dataclass
class JobResult:
    """Everything measured about one job run."""

    elapsed_seconds: float
    energy: EnergyReport
    rank_values: list[Any]
    counters: list[RankCounters]
    comm_seconds: list[float]
    network_bytes: float
    gpu_dram_bytes: float
    gpu_flops: float
    cpu_flops: float
    gpu_profilers: list[Profiler]
    #: rank -> failure description, for ranks that died or hung during a
    #: degraded-mode run (empty on a healthy run).
    failures: dict[int, str] = field(default_factory=dict)
    #: Total MPI send retries across all ranks (lost-message recovery).
    comm_retries: int = 0
    #: Intra-node (loopback) payload bytes — DRAM copies that never touch
    #: the wire, so they are NOT part of network_bytes.
    loopback_bytes: float = 0.0

    @property
    def failed_ranks(self) -> tuple[int, ...]:
        """Ranks that did not complete, ascending."""
        return tuple(sorted(self.failures))

    @property
    def completed(self) -> bool:
        """True when every rank finished its program."""
        return not self.failures

    @property
    def total_flops(self) -> float:
        """All FLOPs retired (CPU + GPU)."""
        return self.gpu_flops + self.cpu_flops

    @property
    def throughput_flops(self) -> float:
        """Sustained FLOP/s over the run."""
        return self.total_flops / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def average_power_watts(self) -> float:
        """Mean cluster power over the run."""
        return self.energy.average_power_watts

    @property
    def energy_joules(self) -> float:
        """Total cluster energy over the run."""
        return self.energy.total_joules

    def mflops_per_watt(self) -> float:
        """The paper's energy-efficiency metric."""
        if self.average_power_watts <= 0:
            return 0.0
        return units_mflops_per_watt(self.throughput_flops, self.average_power_watts)


class Job:
    """Launches ``ranks_per_node`` workload processes on every cluster node.

    ``workload`` is a callable ``(ctx: RankContext) -> generator``; all ranks
    run the same program (SPMD), differentiated by ``ctx.rank``.
    """

    def __init__(
        self,
        cluster: Cluster,
        ranks_per_node: int = 1,
        tracer: Any = None,
        pin_affinity: bool = True,
        seed: int = 0,
        rng: np.random.Generator | None = None,
        faults: FaultSchedule | FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        on_fault: str = "raise",
        telemetry: Any = None,
        fast_path: bool = False,
    ) -> None:
        if ranks_per_node < 1:
            raise ConfigurationError("ranks_per_node must be >= 1")
        if on_fault not in ("raise", "tolerate"):
            raise ConfigurationError(
                f"on_fault must be 'raise' or 'tolerate', got {on_fault!r}"
            )
        self.cluster = cluster
        self.ranks_per_node = ranks_per_node
        self.tracer = tracer
        self.pin_affinity = pin_affinity
        self.on_fault = on_fault
        self.telemetry = telemetry if telemetry is not None else NULL
        if self.telemetry.enabled:
            # One sink observes the whole stack: kernel, fabric, MPI, CUDA,
            # rank states (via the tracer bridge when a tracer is attached).
            self.telemetry.bind_env(cluster.env)
            cluster.env.set_telemetry(self.telemetry)
            cluster.fabric.set_telemetry(self.telemetry)
            if tracer is not None:
                tracer.bind_telemetry(self.telemetry)
        # OS-noise stream: an injected generator wins (lets a driver share
        # one seeded stream across jobs); otherwise seeded privately so two
        # jobs with the same seed draw identical jitter.
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._migration_penalty: dict[int, float] = {}
        self.size = cluster.node_count * ranks_per_node
        self._rank_to_node = [r // ranks_per_node for r in range(self.size)]
        if isinstance(faults, FaultSchedule):
            self._injector: FaultInjector | None = FaultInjector(faults, cluster)
        else:
            self._injector = faults
            if faults is not None and faults.cluster is not cluster:
                raise ConfigurationError(
                    "fault injector is bound to a different cluster"
                )
        # The world's backoff-jitter stream keys on the fault seed so one
        # schedule fully determines a degraded run.
        world_seed = (
            self._injector.schedule.seed + 3 if self._injector is not None else seed
        )
        self.world = CommWorld(
            cluster.env, cluster.fabric, self._rank_to_node, tracer=tracer,
            retry=retry, seed=world_seed, telemetry=self.telemetry,
        )
        if self._injector is not None:
            self._injector.bind_job(self)
        # The fast path is opt-in AND gated on static eligibility: when
        # the analytical shortcut would not be provably byte-identical
        # (faults, retries, a bindable switch), the run silently stays on
        # the full DES.  Imported lazily: the engine depends on cluster
        # topology types, not the other way around.
        self.fast_path = False
        if fast_path:
            from repro.fastpath.engine import install

            decision = install(cluster, injector=self._injector, retry=retry)
            self.fast_path = decision.eligible
        self._cuda: dict[int, CudaContext] = {}
        for node in cluster.nodes:
            if node.has_gpu:
                context = CudaContext(
                    node, pcie_bandwidth=cluster.spec.pcie_bandwidth
                )
                context.set_telemetry(self.telemetry)
                self._cuda[node.node_id] = context

    def ranks_on_node(self, node_id: int) -> int:
        """How many ranks share *node_id* (cache/contention input)."""
        return sum(1 for n in self._rank_to_node if n == node_id)

    def record_state(self, rank: int, state: str, start: float, end: float) -> None:
        """One compute/GPU burst: a single emission path for both consumers.

        With a tracer attached the record flows through it (and the tracer
        mirrors it onto any bound telemetry sink); tracerless telemetry runs
        get the span directly.  Either way exactly one span lands per burst.
        """
        if self.tracer is not None:
            self.tracer.record_state(rank, state, start, end)
        else:
            self.telemetry.record_span(f"rank{rank}", state, "rank", start, end)

    def cuda_context(self, node_id: int) -> CudaContext | None:
        """The shared CUDA context of a node, if it has a GPU."""
        return self._cuda.get(node_id)

    def jitter(self, rank: int) -> float:
        """OS-noise multiplier for a compute block.

        With pinned affinity jitter is negligible.  Unpinned, each rank
        draws a *persistent* migration penalty for the run (a thread that
        keeps bouncing between cores stays slow) plus small per-block noise
        — which is why the paper saw the run-to-run standard deviation
        collapse ~30x when it fixed task affinity on the ThunderX.

        An injected straggler fault multiplies on top of OS noise (the
        multiplier is exactly 1.0 for non-straggler ranks, preserving the
        empty-schedule no-op).
        """
        straggler = (
            self._injector.straggler_multiplier(rank)
            if self._injector is not None
            else 1.0
        )
        if self.pin_affinity:
            if rank not in self._migration_penalty:
                self._migration_penalty[rank] = abs(float(self._rng.normal(0.0, 0.002)))
            return (1.0 + self._migration_penalty[rank]) * straggler
        if rank not in self._migration_penalty:
            self._migration_penalty[rank] = abs(float(self._rng.normal(0.04, 0.06)))
        return (
            1.0
            + self._migration_penalty[rank]
            + abs(float(self._rng.normal(0.0, 0.01)))
        ) * straggler

    def contexts(self) -> list[RankContext]:
        """Build the per-rank contexts (exposed for custom drivers)."""
        ctxs = []
        for rank in range(self.size):
            node = self.cluster.nodes[self._rank_to_node[rank]]
            ctxs.append(
                RankContext(
                    self,
                    rank,
                    node,
                    self.world.communicator(rank),
                    self._cuda.get(node.node_id),
                )
            )
        return ctxs

    def run(self, workload: Callable[[RankContext], Any]) -> JobResult:
        """Execute the SPMD *workload* and measure everything.

        With ``on_fault="raise"`` (the default) the first injected failure
        propagates to the caller as its typed exception.  With
        ``on_fault="tolerate"`` failed ranks are recorded in
        :attr:`JobResult.failures` and the surviving ranks run to completion
        (or to deadlock on a dead peer, which is also recorded).
        """
        env = self.cluster.env
        start = env.now
        contexts = self.contexts()
        procs = [env.process(workload(ctx)) for ctx in contexts]
        if self._injector is not None:
            for rank, proc in enumerate(procs):
                self._injector.register_rank(rank, self._rank_to_node[rank], proc)
            self._injector.arm()
        sampler = None
        if self.telemetry.enabled:
            self.telemetry.instant("job", "job:start", "job", ranks=self.size)
            if self.telemetry.sample_interval > 0:
                sampler = UtilizationSampler(self.telemetry, self.cluster)
                sampler.start()
        failures: dict[int, str] = {}
        try:
            if self.on_fault == "tolerate":
                self._drive_tolerant(procs, failures)
            else:
                for proc in procs:
                    env.run(until=proc)
        finally:
            if sampler is not None:
                sampler.stop()
                # Flush the trailing partial interval: the job almost never
                # ends exactly on a sampling tick.
                sampler.finish()
        elapsed = env.now - start
        if self.telemetry.enabled:
            self.telemetry.instant("job", "job:end", "job",
                                   elapsed=elapsed, failures=len(failures))
            self.telemetry.gauge(
                "job_elapsed_seconds", "wall (simulated) duration of the run",
                unit="seconds",
            ).set(elapsed)

        metering = Metering(self.cluster)
        energy = metering.report(elapsed)
        gpu_flops = sum(
            ctx.profiler.total_flops for ctx in self._cuda.values()
        )
        gpu_dram = sum(
            node.dram.traffic.gpu_bytes + node.dram.traffic.copy_bytes
            for node in self.cluster.nodes
        )
        return JobResult(
            elapsed_seconds=elapsed,
            energy=energy,
            rank_values=[
                p.value if (p.triggered and p.ok) else None for p in procs
            ],
            counters=[ctx.counters for ctx in contexts],
            comm_seconds=[s.comm_seconds for s in self.world.stats],
            network_bytes=self.cluster.fabric.total_bytes,
            gpu_dram_bytes=gpu_dram,
            gpu_flops=gpu_flops,
            cpu_flops=sum(ctx.counters.cpu_flops for ctx in contexts),
            gpu_profilers=[c.profiler for c in self._cuda.values()],
            failures=failures,
            comm_retries=sum(s.retries for s in self.world.stats),
            loopback_bytes=self.cluster.fabric.loopback_bytes,
        )

    def _drive_tolerant(self, procs: list, failures: dict[int, str]) -> None:
        """Drive every rank, absorbing injected faults instead of raising.

        ``env.run(until=proc)`` surfaces the failure of *any* process, not
        just the target, so each caught fault is attributed by scanning for
        the proc that actually holds that exception.  When the event queue
        drains while some procs are still pending (survivors blocked forever
        on a dead peer), those ranks are recorded as hung.  Non-fault
        exceptions (genuine bugs) still propagate.
        """
        env = self.cluster.env

        def _attribute(exc: BaseException) -> None:
            # An unmatched exception is an orphan: a helper process (e.g. a
            # sendrecv leg) failing after its rank already died.  Absorb it —
            # the owning rank's own failure is recorded separately.
            for rank, proc in enumerate(procs):
                if rank in failures or not proc.triggered or proc.ok:
                    continue
                if proc.value is exc:
                    failures[rank] = str(exc)
                    return

        while True:
            pending = [p for p in procs if not p.triggered]
            if not pending:
                return
            try:
                env.run(until=pending[0])
            except FAULT_ERRORS as exc:
                _attribute(exc)
            except SimulationError:
                # Queue drained with procs still pending: survivors are
                # deadlocked on dead peers.
                for rank, proc in enumerate(procs):
                    if not proc.triggered and rank not in failures:
                        failures[rank] = "hung (blocked on a failed rank)"
                return
