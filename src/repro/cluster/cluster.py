"""Cluster builder: nodes + switch + file server."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware import catalog
from repro.hardware.nic import NICSpec
from repro.hardware.node import Node, NodeSpec
from repro.network import Fabric, SwitchSpec
from repro.sim import Environment


@dataclass(frozen=True)
class ClusterSpec:
    """Describes a homogeneous cluster build."""

    name: str
    node_spec: NodeSpec
    node_count: int
    nic: NICSpec
    switch: SwitchSpec
    # PCIe bandwidth for discrete-GPU hosts (None = integrated/unified GPU).
    pcie_bandwidth: float | None = None

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ConfigurationError(f"{self.name}: need at least one node")


def tx1_cluster_spec(node_count: int, network: str = "10G") -> ClusterSpec:
    """The paper's cluster: *node_count* Jetson TX1s on 1 GbE or 10 GbE."""
    if network == "10G":
        nic, switch = catalog.XGBE_PCIE, SwitchSpec.from_catalog(catalog.SWITCH_10G)
    elif network == "1G":
        nic, switch = catalog.GBE_ONBOARD, SwitchSpec.from_catalog(catalog.SWITCH_1G)
    else:
        raise ConfigurationError(f"unknown network {network!r} (use '1G' or '10G')")
    return ClusterSpec(
        name=f"TX1x{node_count}-{network}",
        node_spec=catalog.jetson_tx1(),
        node_count=node_count,
        nic=nic,
        switch=switch,
    )


def gtx980_cluster_spec(node_count: int = 2) -> ClusterSpec:
    """The discrete-GPGPU comparison cluster: GTX 980 hosts on 10 GbE."""
    return ClusterSpec(
        name=f"GTX980x{node_count}",
        node_spec=catalog.gtx980_host(),
        node_count=node_count,
        nic=catalog.XGBE_XEON,
        switch=SwitchSpec.from_catalog(catalog.SWITCH_10G),
        pcie_bandwidth=catalog.PCIE3_X16_BANDWIDTH,
    )


def thunderx_cluster_spec() -> ClusterSpec:
    """The Cavium ThunderX server as a single-node 'cluster'."""
    return ClusterSpec(
        name="ThunderX",
        node_spec=catalog.cavium_thunderx(),
        node_count=1,
        nic=catalog.XGBE_XEON,
        switch=SwitchSpec.from_catalog(catalog.SWITCH_10G),
    )


class Cluster:
    """A live cluster in a fresh simulation environment.

    Besides the compute nodes, an NFS file server (§III-A: SSD-backed, on
    the same switch) is attached to the fabric with id ``node_count``; it
    serves workload inputs (e.g. JPEG images) but is excluded from the
    cluster's power metering, as in the paper.
    """

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.env = Environment()
        self.fabric = Fabric(self.env, spec.switch)
        self.nodes = [
            Node(self.env, spec.node_spec, node_id=i, nic=spec.nic)
            for i in range(spec.node_count)
        ]
        for node in self.nodes:
            self.fabric.attach(node)
        # The Xeon file server is not PCIe-lane limited, so on a 10 GbE
        # switch it gets a full-rate NIC; on 1 GbE it shares the line rate.
        fs_nic = (
            catalog.XGBE_XEON
            if spec.nic.line_rate > catalog.GBE_ONBOARD.line_rate
            else spec.nic
        )
        self.fileserver = Node(
            self.env, catalog.fileserver(), node_id=spec.node_count, nic=fs_nic
        )
        self.fabric.attach(self.fileserver)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def healthy_nodes(self) -> list[Node]:
        """Nodes not failed by fault injection (the file server excluded)."""
        return [node for node in self.nodes if node.is_healthy]

    @property
    def failed_node_ids(self) -> list[int]:
        """Ids of crashed compute nodes, ascending."""
        return [node.node_id for node in self.nodes if node.failed]

    def fail_node(self, node_id: int) -> Node:
        """Crash compute node *node_id* now; returns the node."""
        if not 0 <= node_id < len(self.nodes):
            raise ConfigurationError(f"unknown compute node id {node_id}")
        node = self.nodes[node_id]
        node.fail()
        return node

    @property
    def total_cores(self) -> int:
        """Total CPU cores in the cluster."""
        return self.node_count * self.spec.node_spec.core_count

    @property
    def peak_dp_flops(self) -> float:
        """Aggregate peak DP FLOP/s."""
        return self.node_count * self.spec.node_spec.peak_dp_flops

    @property
    def gpu_peak_dp_flops(self) -> float:
        """Aggregate GPU-only peak DP FLOP/s (the extended-Roofline roof)."""
        gpu = self.spec.node_spec.gpu
        return self.node_count * gpu.peak_dp_flops if gpu else 0.0

    def nic_power_watts(self) -> float:
        """Total NIC adder power across the cluster."""
        return self.node_count * self.spec.nic.power_watts
