"""Cluster assembly and job execution.

A :class:`Cluster` bundles N nodes, a switch fabric, and a file server; a
:class:`Job` launches one MPI rank per requested process slot, giving each
rank a :class:`RankContext` (communicator, CUDA context, CPU charging, power
accounting).  :class:`Metering` closes the energy integral over a run,
including the switch and NIC adders the paper's socket meter saw.
"""

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.cluster.job import Job, JobResult, RankContext
from repro.cluster.metering import EnergyReport, Metering

__all__ = [
    "Cluster",
    "ClusterSpec",
    "EnergyReport",
    "Job",
    "JobResult",
    "Metering",
    "RankContext",
]
