"""The telemetry sinks: a recording :class:`Telemetry` and a no-op null.

One :class:`Telemetry` instance observes one simulation environment.  Every
instrumented layer (sim kernel, fabric, MPI, CUDA, job, fault injector)
holds a sink reference and reports through it; with the
:class:`NullTelemetry` attached each hook is a constant-time no-op that
touches no state and consumes no randomness, so an uninstrumented run is
bit-for-bit identical to a telemetry-enabled one (the same guarantee the
fault layer makes for empty schedules).
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING

from repro.errors import TelemetryError
from repro.telemetry.instruments import (
    Counter,
    Gauge,
    Histogram,
    Registry,
)
from repro.telemetry.spans import NULL_SPAN, NullSpanHandle, SpanHandle, SpanRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment


class SamplePoint:
    """One time-series sample: (track, name, sim time, value)."""

    __slots__ = ("track", "name", "time", "value")

    def __init__(self, track: str, name: str, time: float, value: float) -> None:
        self.track = track
        self.name = name
        self.time = time
        self.value = value

    def __repr__(self) -> str:
        return f"<Sample {self.track}/{self.name} t={self.time:.6f} v={self.value}>"


class Telemetry:
    """The recording sink: spans, instruments, and time-series samples.

    ``sample_interval`` (simulated seconds) drives the periodic utilization
    sampler a :class:`~repro.cluster.job.Job` starts; 0 disables sampling.
    """

    enabled = True

    def __init__(self, sample_interval: float = 0.1) -> None:
        if sample_interval < 0:
            raise TelemetryError(
                f"sample_interval must be >= 0, got {sample_interval}"
            )
        self.sample_interval = sample_interval
        self.registry = Registry()
        self.spans: list[SpanRecord] = []
        self.samples: list[SamplePoint] = []
        self._env: "Environment | None" = None

    # -- environment binding ---------------------------------------------------

    def bind_env(self, env: "Environment") -> None:
        """Attach the environment whose clock stamps every record.

        Rebinding to a different environment is rejected: a sink's timeline
        must have a single time axis.
        """
        if self._env is not None and self._env is not env:
            raise TelemetryError("telemetry sink already bound to an environment")
        self._env = env

    @property
    def now(self) -> float:
        """Current simulated time (0.0 before the sink is bound)."""
        return self._env.now if self._env is not None else 0.0

    # -- spans -----------------------------------------------------------------

    def span(self, track: str, name: str, category: str = "", **args: object) -> SpanHandle:
        """Open a *scoped* span (properly nested on its track)."""
        # sys.intern: the same track/name strings recur for every call site
        # over a run's lifetime; interning collapses them to one object each,
        # shrinking the span list's footprint and making the exporters'
        # dict lookups pointer-compare fast.
        return SpanHandle(
            self,
            SpanRecord(sys.intern(track), sys.intern(name), category,
                       self.now, self.now, kind="scoped", args=dict(args)),
        )

    def async_span(self, track: str, name: str, category: str = "", **args: object) -> SpanHandle:
        """Open an *async* span (may overlap others on its track)."""
        return SpanHandle(
            self,
            SpanRecord(sys.intern(track), sys.intern(name), category,
                       self.now, self.now, kind="async", args=dict(args)),
        )

    def record_span(
        self,
        track: str,
        name: str,
        category: str,
        start: float,
        end: float,
        kind: str = "scoped",
        **args: object,
    ) -> None:
        """Record an already-timed span (the Tracer bridge's entry point)."""
        if end < start:
            raise TelemetryError(f"span ends before it starts: {start} > {end}")
        self._finish(SpanRecord(sys.intern(track), sys.intern(name), category,
                                start, end, kind=kind, args=dict(args)))

    def instant(self, track: str, name: str, category: str = "", **args: object) -> None:
        """Record an instant marker at the current simulated time."""
        now = self.now
        self._finish(SpanRecord(sys.intern(track), sys.intern(name), category,
                                now, now, kind="instant", args=dict(args)))

    def _finish(self, record: SpanRecord) -> None:
        self.spans.append(record)
        # getattr: the sink also binds to bare clock stand-ins in tests.
        hp = getattr(self._env, "host_profiler", None)
        if hp is not None:
            hp.span_emitted()

    # -- instruments -----------------------------------------------------------

    def counter(self, name: str, description: str = "", unit: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        """Get or create a counter in this sink's registry."""
        return self.registry.counter(name, description, unit, labelnames)

    def gauge(self, name: str, description: str = "", unit: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        """Get or create a gauge in this sink's registry."""
        return self.registry.gauge(name, description, unit, labelnames)

    def histogram(self, name: str, description: str = "", unit: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        """Get or create a histogram in this sink's registry."""
        if buckets is None:
            return self.registry.histogram(name, description, unit, labelnames)
        return self.registry.histogram(name, description, unit, labelnames, buckets)

    # -- time series -----------------------------------------------------------

    def sample(self, track: str, name: str, value: float) -> None:
        """Append one time-series point at the current simulated time."""
        self.samples.append(
            SamplePoint(sys.intern(track), sys.intern(name), self.now, float(value))
        )
        hp = getattr(self._env, "host_profiler", None)
        if hp is not None:
            hp.sample_emitted()

    # -- summaries -------------------------------------------------------------

    def span_counts(self) -> dict[str, int]:
        """Finished spans per category, category-sorted."""
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.category] = counts.get(span.category, 0) + 1
        return dict(sorted(counts.items()))

    def tracks(self) -> list[str]:
        """Every track that received a span or sample, sorted."""
        names = {span.track for span in self.spans}
        names.update(point.track for point in self.samples)
        return sorted(names)


class _NullInstrument:
    """One shared object absorbing every instrument call when disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """No-op."""

    def set(self, value: float, **labels: object) -> None:
        """No-op."""

    def add(self, delta: float, **labels: object) -> None:
        """No-op."""

    def observe(self, value: float, **labels: object) -> None:
        """No-op."""

    def value(self, **labels: object) -> float:
        """Always 0.0."""
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullTelemetry:
    """The disabled sink: every hook is a constant-time no-op.

    All span factories return the shared :data:`~repro.telemetry.spans.NULL_SPAN`
    and all instrument factories the shared null instrument, so instrumented
    call sites pay two attribute lookups and a call — no allocation, no
    branching on simulation state, no RNG.
    """

    enabled = False
    sample_interval = 0.0

    def bind_env(self, env: object) -> None:
        """No-op."""

    @property
    def now(self) -> float:
        """Always 0.0 (the null sink has no clock)."""
        return 0.0

    def span(self, track: str, name: str, category: str = "", **args: object) -> NullSpanHandle:
        """The shared no-op span."""
        return NULL_SPAN

    def async_span(self, track: str, name: str, category: str = "", **args: object) -> NullSpanHandle:
        """The shared no-op span."""
        return NULL_SPAN

    def record_span(self, track: str, name: str, category: str,
                    start: float, end: float, kind: str = "scoped",
                    **args: object) -> None:
        """No-op."""

    def instant(self, track: str, name: str, category: str = "", **args: object) -> None:
        """No-op."""

    def counter(self, name: str, description: str = "", unit: str = "",
                labelnames: tuple[str, ...] = ()) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, description: str = "", unit: str = "",
              labelnames: tuple[str, ...] = ()) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, description: str = "", unit: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] | None = None) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def sample(self, track: str, name: str, value: float) -> None:
        """No-op."""


#: The shared disabled sink every component defaults to.
NULL = NullTelemetry()
