"""Exporters: Chrome trace-event JSON and Prometheus-style text.

Both exports are **deterministic**: identical runs produce byte-identical
output.  Ordering is fixed (tracks sorted, spans in record order, metric
families name-sorted), timestamps are simulated time only, and no
wall-clock or host-identity field is ever emitted (lint rule RL001's
contract extended to the export surface).

The Chrome format loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: scoped spans become complete ``X`` events, async
spans ``b``/``e`` pairs, instant markers ``i`` events, and time-series
samples ``C`` counter events that render as filled line charts.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.telemetry.instruments import Counter, Gauge, Histogram, Registry
from repro.telemetry.sink import Telemetry
from repro.units import to_us

# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------


def to_chrome_trace(telemetry: Telemetry) -> dict[str, Any]:
    """Build the Chrome trace-event document for *telemetry*.

    Tracks map to trace "processes" (sorted by name for stable pids);
    every event of a track runs on its thread 0.
    """
    tracks = telemetry.tracks()
    pids = {track: index for index, track in enumerate(tracks)}
    events: list[dict[str, Any]] = []
    for track in tracks:
        pid = pids[track]
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": track},
        })
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
            "args": {"sort_index": pid},
        })

    async_id = 0
    for span in telemetry.spans:
        pid = pids[span.track]
        cat = span.category or "span"
        args = dict(span.args)
        if span.kind == "instant":
            events.append({
                "ph": "i", "name": span.name, "cat": cat, "pid": pid,
                "tid": 0, "ts": to_us(span.start), "s": "p", "args": args,
            })
        elif span.kind == "async":
            async_id += 1
            head = {
                "ph": "b", "name": span.name, "cat": cat, "id": async_id,
                "pid": pid, "tid": 0, "ts": to_us(span.start), "args": args,
            }
            tail = {
                "ph": "e", "name": span.name, "cat": cat, "id": async_id,
                "pid": pid, "tid": 0, "ts": to_us(span.end), "args": {},
            }
            events.append(head)
            events.append(tail)
        else:
            events.append({
                "ph": "X", "name": span.name, "cat": cat, "pid": pid,
                "tid": 0, "ts": to_us(span.start),
                "dur": to_us(span.seconds), "args": args,
            })

    for point in telemetry.samples:
        events.append({
            "ph": "C", "name": point.name, "pid": pids[point.track], "tid": 0,
            "ts": to_us(point.time), "args": {point.name: point.value},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.telemetry", "timebase": "simulated"},
    }


def write_chrome_trace(telemetry: Telemetry, stream: IO[str]) -> None:
    """Serialize the Chrome trace for *telemetry* to a text *stream*."""
    json.dump(to_chrome_trace(telemetry), stream, sort_keys=True,
              separators=(",", ":"))


# ---------------------------------------------------------------------------
# Prometheus-style text snapshot
# ---------------------------------------------------------------------------


def _format_value(value: float) -> str:
    """Render a sample value: integral floats lose the fraction."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labelnames: tuple[str, ...], labelvalues: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = list(zip(labelnames, labelvalues)) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


def to_prometheus_text(registry: Registry) -> str:
    """Render a registry as Prometheus exposition text (name-sorted).

    Counters and gauges emit one sample per label tuple; histograms emit
    cumulative ``_bucket`` samples (with the canonical ``le`` label), plus
    ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    for instrument in registry.instruments():
        help_text = instrument.description or instrument.name
        if instrument.unit:
            help_text += f" [{instrument.unit}]"
        lines.append(f"# HELP {instrument.name} {help_text}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            for labelvalues, value in sorted(instrument.series()):
                labels = _format_labels(instrument.labelnames, labelvalues)
                lines.append(
                    f"{instrument.name}{labels} {_format_value(value)}"
                )
        elif isinstance(instrument, Histogram):
            for labelvalues, series in sorted(
                instrument.series(), key=lambda item: item[0]
            ):
                cumulative = 0
                for bound, count in zip(
                    instrument.buckets, series.bucket_counts
                ):
                    cumulative += count
                    labels = _format_labels(
                        instrument.labelnames, labelvalues,
                        extra=(("le", _format_value(bound)),),
                    )
                    lines.append(
                        f"{instrument.name}_bucket{labels} {cumulative}"
                    )
                cumulative += series.bucket_counts[-1]
                labels = _format_labels(
                    instrument.labelnames, labelvalues, extra=(("le", "+Inf"),)
                )
                lines.append(f"{instrument.name}_bucket{labels} {cumulative}")
                base = _format_labels(instrument.labelnames, labelvalues)
                lines.append(
                    f"{instrument.name}_sum{base} {_format_value(series.total)}"
                )
                lines.append(f"{instrument.name}_count{base} {series.count}")
    return "\n".join(lines) + ("\n" if lines else "")
