"""Typed instruments and the registry that owns them.

Three instrument kinds, modelled on the OpenMetrics/Prometheus data model
but stripped to what a deterministic simulator needs:

* :class:`Counter` — a monotonically increasing total (bytes moved, events
  processed, faults fired).
* :class:`Gauge` — a last-value-wins level (active flows, sim time).
* :class:`Histogram` — a distribution over **fixed** bucket boundaries
  chosen at creation time (message latencies, kernel durations).  Fixed
  boundaries keep exports byte-stable: no adaptive rebucketing that would
  depend on arrival order.

Every instrument is keyed by ``name`` plus an ordered tuple of label
*names*; each distinct label-*value* tuple owns an independent series.  The
:class:`Registry` get-or-creates instruments so call sites can be wired
once and cheaply incremented afterwards.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterator

from repro.errors import TelemetryError

#: Default duration buckets (seconds): 1 µs .. 100 s, one per decade with a
#: 1-2.5-5 subdivision — wide enough for NIC latencies and whole-run spans.
DURATION_BUCKETS: tuple[float, ...] = tuple(
    base * 10.0**exponent
    for exponent in range(-6, 3)
    for base in (1.0, 2.5, 5.0)
)

#: Default size buckets (bytes): 64 B .. 4 GiB, powers of four.
SIZE_BUCKETS: tuple[float, ...] = tuple(64.0 * 4.0**i for i in range(14))


def _label_key(
    labelnames: tuple[str, ...], labels: dict[str, object]
) -> tuple[str, ...]:
    """The series key for *labels*, validated against *labelnames*."""
    if set(labels) != set(labelnames):
        raise TelemetryError(
            f"labels {sorted(labels)} do not match declared label names "
            f"{sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Instrument:
    """Shared identity of one metric family: name, help text, labels."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        labelnames: tuple[str, ...] = (),
    ) -> None:
        if not name or not name.replace("_", "a").isidentifier():
            raise TelemetryError(f"bad instrument name {name!r}")
        if len(set(labelnames)) != len(labelnames):
            raise TelemetryError(f"duplicate label names in {labelnames!r}")
        self.name = name
        self.description = description
        self.unit = unit
        self.labelnames = tuple(labelnames)

    def series(self) -> Iterator[tuple[tuple[str, ...], object]]:
        """Yield ``(label_values, value)`` per series, insertion-ordered."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} labels={self.labelnames}>"


class Counter(Instrument):
    """A monotonically increasing float total per label tuple."""

    kind = "counter"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add *amount* (must be >= 0) to the series selected by *labels*."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(self.labelnames, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current total of one series (0.0 if never incremented)."""
        return self._values.get(_label_key(self.labelnames, labels), 0.0)

    def series(self) -> Iterator[tuple[tuple[str, ...], float]]:
        yield from self._values.items()


class Gauge(Instrument):
    """A settable level per label tuple (last write wins)."""

    kind = "gauge"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Set the series selected by *labels* to *value*."""
        self._values[_label_key(self.labelnames, labels)] = float(value)

    def add(self, delta: float, **labels: object) -> None:
        """Adjust the series by *delta* (gauges may go up and down)."""
        key = _label_key(self.labelnames, labels)
        self._values[key] = self._values.get(key, 0.0) + delta

    def value(self, **labels: object) -> float:
        """Current level of one series (0.0 if never set)."""
        return self._values.get(_label_key(self.labelnames, labels), 0.0)

    def series(self) -> Iterator[tuple[tuple[str, ...], float]]:
        yield from self._values.items()


class HistogramSeries:
    """Bucket counts, sum, and count for one label tuple."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1: the +Inf bucket
        self.total = 0.0
        self.count = 0


class Histogram(Instrument):
    """A distribution over fixed, strictly increasing bucket boundaries."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DURATION_BUCKETS,
    ) -> None:
        super().__init__(name, description, unit, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name} buckets must be strictly increasing"
            )
        if any(not math.isfinite(b) for b in bounds):
            raise TelemetryError(
                f"histogram {name} buckets must be finite (+Inf is implicit)"
            )
        self.buckets = bounds
        self._series: dict[tuple[str, ...], HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the series selected by *labels*."""
        key = _label_key(self.labelnames, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = HistogramSeries(len(self.buckets))
        series.bucket_counts[bisect_left(self.buckets, value)] += 1
        series.total += value
        series.count += 1

    def snapshot(self, **labels: object) -> HistogramSeries:
        """The (live) series for *labels*; empty if never observed."""
        key = _label_key(self.labelnames, labels)
        return self._series.get(key, HistogramSeries(len(self.buckets)))

    def series(self) -> Iterator[tuple[tuple[str, ...], HistogramSeries]]:
        yield from self._series.items()


class Registry:
    """Owns every instrument of one telemetry sink, keyed by name."""

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    def _get_or_create(self, cls: type, name: str, **kwargs) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise TelemetryError(
                    f"instrument {name} already registered as "
                    f"{existing.kind}, requested {cls.kind}"
                )
            return existing
        instrument = cls(name, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        labelnames: tuple[str, ...] = (),
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        counter = self._get_or_create(
            Counter, name, description=description, unit=unit, labelnames=labelnames
        )
        assert isinstance(counter, Counter)
        return counter

    def gauge(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        labelnames: tuple[str, ...] = (),
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        gauge = self._get_or_create(
            Gauge, name, description=description, unit=unit, labelnames=labelnames
        )
        assert isinstance(gauge, Gauge)
        return gauge

    def histogram(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DURATION_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram` (buckets fixed on creation)."""
        histogram = self._get_or_create(
            Histogram, name, description=description, unit=unit,
            labelnames=labelnames, buckets=buckets,
        )
        assert isinstance(histogram, Histogram)
        return histogram

    def instruments(self) -> list[Instrument]:
        """All instruments, name-sorted (the exporters' stable order)."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def get(self, name: str) -> Instrument:
        """Look up one instrument by name.

        Raises :class:`TelemetryError` naming the registered instruments on
        a miss, so a typo'd metric name fails loudly instead of silently
        reading zeros.  Use ``name in registry`` to probe optionally.
        """
        instrument = self._instruments.get(name)
        if instrument is None:
            known = ", ".join(sorted(self._instruments)) or "<none>"
            raise TelemetryError(
                f"unknown instrument {name!r}; registered instruments: {known}"
            )
        return instrument

    def __contains__(self, name: object) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)
