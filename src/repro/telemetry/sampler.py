"""Periodic utilization sampling driven by the simulation clock.

The sampler is a plain sim :class:`~repro.sim.core.Process` that wakes every
``interval`` simulated seconds and appends read-only utilization samples —
per-node NIC utilization, CPU and GPU occupancy, fabric link utilization,
and active flow count — to the bound :class:`~repro.telemetry.sink.Telemetry`.

Two properties keep it safe to leave running:

* It is **read-only**: sampling inspects cumulative accounting the layers
  already keep (bytes moved, busy-seconds) and mutates nothing, so a
  sampled run's workload results are bit-identical to an unsampled one.
* It is **self-terminating**: when the sampler wakes to an otherwise empty
  event queue, nothing else can ever happen (only triggered events sit in
  the queue), so it stops instead of ticking forever — which keeps the
  queue-drain deadlock detection of tolerant fault runs working.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.errors import TelemetryError
from repro.telemetry.sink import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.sim.core import Process


class UtilizationSampler:
    """Samples cluster utilization into a telemetry sink at fixed intervals."""

    def __init__(
        self,
        telemetry: Telemetry,
        cluster: "Cluster",
        interval: float | None = None,
    ) -> None:
        if interval is None:
            interval = telemetry.sample_interval
        if interval <= 0:
            raise TelemetryError(f"sampler interval must be positive, got {interval}")
        self.telemetry = telemetry
        self.cluster = cluster
        self.interval = float(interval)
        self.samples_taken = 0
        self._stopped = False
        self._finished = False
        self._process: "Process | None" = None
        #: Simulated time of the last emitted sample (interval start).
        self._last_sample_time = float(cluster.env.now)
        # Cumulative accounting at the previous tick, keyed by node id.
        self._prev_nic: dict[int, float] = {}
        self._prev_cpu: dict[int, float] = {}
        self._prev_gpu: dict[int, float] = {}
        self._prev_fabric_bytes = 0.0
        env = cluster.env
        telemetry.bind_env(env)
        self._nic_gauge = telemetry.gauge(
            "node_nic_utilization", "NIC utilization over the last sample interval",
            unit="ratio", labelnames=("node",),
        )
        self._cpu_gauge = telemetry.gauge(
            "node_cpu_occupancy", "busy core-seconds per core over the interval",
            unit="ratio", labelnames=("node",),
        )
        self._gpu_gauge = telemetry.gauge(
            "node_gpu_occupancy", "GPU busy fraction over the interval",
            unit="ratio", labelnames=("node",),
        )
        self._link_gauge = telemetry.gauge(
            "fabric_link_utilization",
            "aggregate traffic over bisection bandwidth for the interval",
            unit="ratio",
        )
        self._flows_gauge = telemetry.gauge(
            "fabric_active_flows", "concurrent flows at the sample instant",
        )

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "Process":
        """Start the sampling process (idempotent)."""
        if self._process is None:
            self._stopped = False
            self._finished = False
            self._last_sample_time = float(self.cluster.env.now)
            self._process = self.cluster.env.process(self._run())
        return self._process

    def stop(self) -> None:
        """Ask the sampler to exit at its next wake-up."""
        self._stopped = True

    def finish(self) -> None:
        """Emit one final sample covering the trailing partial interval.

        A job rarely ends exactly on a tick; without this, the work done
        between the last tick and job completion would never be sampled.
        Idempotent: the second call finds zero elapsed time and does nothing.
        """
        if self._finished:
            return
        self._finished = True
        elapsed = float(self.cluster.env.now) - self._last_sample_time
        if elapsed > 0:
            self._take_sample(elapsed)

    # -- the process -----------------------------------------------------------

    def _run(self):
        env = self.cluster.env
        while True:
            yield env.timeout(self.interval)
            if self._stopped:
                return
            self._take_sample(self.interval)
            # An empty queue after sampling means no process can ever run
            # again (untriggered events are not queued): stop rather than
            # keep the simulation alive forever.
            if math.isinf(env.peek()):
                return

    def _take_sample(self, interval: float) -> None:
        tm = self.telemetry
        self.samples_taken += 1
        self._last_sample_time = float(self.cluster.env.now)
        for node in self.cluster.nodes:
            track = f"node{node.node_id}"
            label = str(node.node_id)

            moved = node.network_bytes_sent + node.network_bytes_received
            delta = moved - self._prev_nic.get(node.node_id, 0.0)
            self._prev_nic[node.node_id] = moved
            nic_util = delta / (interval * node.nic.achievable_rate)
            tm.sample(track, "nic_utilization", nic_util)
            self._nic_gauge.set(nic_util, node=label)

            busy = node.power.cpu_busy_core_seconds
            delta = busy - self._prev_cpu.get(node.node_id, 0.0)
            self._prev_cpu[node.node_id] = busy
            cpu_occ = delta / (interval * node.spec.core_count)
            tm.sample(track, "cpu_occupancy", cpu_occ)
            self._cpu_gauge.set(cpu_occ, node=label)

            if node.has_gpu:
                busy = node.power.gpu_busy_seconds
                delta = busy - self._prev_gpu.get(node.node_id, 0.0)
                self._prev_gpu[node.node_id] = busy
                gpu_occ = delta / interval
                tm.sample(track, "gpu_occupancy", gpu_occ)
                self._gpu_gauge.set(gpu_occ, node=label)

        fabric = self.cluster.fabric
        delta = fabric.total_bytes - self._prev_fabric_bytes
        self._prev_fabric_bytes = fabric.total_bytes
        link_util = delta / (interval * fabric.switch.bisection_bandwidth)
        tm.sample("fabric", "link_utilization", link_util)
        self._link_gauge.set(link_util)
        tm.sample("fabric", "active_flows", float(fabric.active_flows))
        self._flows_gauge.set(float(fabric.active_flows))
