"""Cross-cutting instrumentation for the whole simulator stack.

The observability backbone: typed instruments (counters, gauges, fixed-
bucket histograms) in a :class:`Registry`, sim-time-stamped :class:`Span`\\ s
around kernel dispatch / fabric transfers / MPI calls / CUDA work / fault
activations, a clock-driven :class:`UtilizationSampler`, and two exporters
(Chrome trace-event JSON for Perfetto, Prometheus-style text snapshots).

Attach a :class:`Telemetry` sink to a :class:`~repro.cluster.job.Job` (or
pass ``telemetry=`` to ``run_workload``) to record; the default
:data:`NULL` sink makes every hook a provable no-op, so untelemetered runs
are bit-for-bit identical.  See ``docs/TELEMETRY.md``.
"""

from repro.telemetry.exporters import (
    to_chrome_trace,
    to_prometheus_text,
    write_chrome_trace,
)
from repro.telemetry.instruments import (
    DURATION_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
)
from repro.telemetry.sampler import UtilizationSampler
from repro.telemetry.sink import NULL, NullTelemetry, SamplePoint, Telemetry
from repro.telemetry.spans import SpanHandle, SpanRecord

__all__ = [
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "NULL",
    "NullTelemetry",
    "Registry",
    "SIZE_BUCKETS",
    "SamplePoint",
    "SpanHandle",
    "SpanRecord",
    "Telemetry",
    "UtilizationSampler",
    "to_chrome_trace",
    "to_prometheus_text",
    "write_chrome_trace",
]
