"""Span records and the context managers that open them.

A span is a named interval on one *track* of the exported timeline, stamped
with **simulated** time at open and close (never wall clock — RL001).  Two
flavours map onto the two Chrome-trace encodings:

* *scoped* spans (``kind="scoped"``) promise proper nesting on their track
  (a ``with`` block inside a ``with`` block) and export as complete ``X``
  events; used where the simulator serializes work (a rank's compute
  bursts, a GPU engine's kernels).
* *async* spans (``kind="async"``) may overlap freely on a track and export
  as ``b``/``e`` pairs; used for concurrent flows (fabric transfers, the
  send leg of a ``sendrecv``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class SpanRecord:
    """One finished (or instant) interval on the telemetry timeline."""

    track: str
    name: str
    category: str
    start: float
    end: float
    kind: str = "scoped"  # "scoped" | "async" | "instant"
    args: dict[str, object] = field(default_factory=dict)
    #: True when the span closed via an exception (the failure is noted in
    #: ``args["error"]``).
    error: bool = False

    @property
    def seconds(self) -> float:
        """Span duration in simulated seconds."""
        return self.end - self.start


class SpanHandle:
    """The live object a ``with telemetry.span(...)`` block receives.

    ``set(key=value)`` attaches arguments that are only known mid-flight
    (a transfer's negotiated rate, a receive's matched source).
    """

    __slots__ = ("_sink", "_record")

    def __init__(self, sink, record: SpanRecord) -> None:
        self._sink = sink
        self._record = record

    def set(self, **args: object) -> None:
        """Attach or overwrite span arguments."""
        self._record.args.update(args)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        record = self._record
        record.end = self._sink.now
        if exc is not None:
            record.error = True
            record.args["error"] = f"{type(exc).__name__}: {exc}"
        self._sink._finish(record)


class NullSpanHandle:
    """A reusable no-op stand-in for :class:`SpanHandle`.

    One shared instance serves every disabled span: entering, exiting, and
    ``set`` do nothing, so an instrumented call site costs two method calls
    when telemetry is off.
    """

    __slots__ = ()

    def set(self, **args: object) -> None:
        """No-op."""

    def __enter__(self) -> "NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The shared disabled-span instance.
NULL_SPAN = NullSpanHandle()
