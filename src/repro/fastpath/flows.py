"""Analytical flow timeline replaying the DES fabric's exact event order.

The full DES moves every transfer through a resource cascade — tx grant,
rx grant, ``all_of``, wire timeout, release — and recomputes the flow's
fair share in Python each round.  Under fast-path eligibility the fair
share provably never binds, so a transfer's schedule is closed-form: it is
granted at ``max(now, tx_free[src], rx_free[dst])`` and both NICs come
free at ``grant + wire``.  :meth:`FlowTimeline.reserve` computes those two
instants with plain binary64 arithmetic (the same operations, on the same
floats, the DES would perform) and the fabric schedules one absolutely
timed completion with ``Environment.timeout_at``.

Byte-identity is a stronger contract than matching instants: accumulation
order at *tied* instants must match too, because same-timestamp events
pop in push (eid) order and downstream float sums are order-sensitive.
The timeline therefore reproduces the DES's resumption positions exactly:

* **Uncontended, quiescent heap** — the DES would pop grant/grant/all_of
  back to back with nothing in between, so the transfer continues inline
  (no events at all).
* **Uncontended, same-instant events pending** — the transfer parks on a
  two-hop relay chain (:meth:`_chain`): the relay is pushed where the DES
  pushes the first grant, and the wake pops where the ``all_of`` would,
  after every event the concurrent processes push at this instant.
* **Contended** — the transfer parks on an untriggered wake and registers
  with the flow(s) still holding its NICs.  Each blocking flow's
  :meth:`complete` (called at the DES's release point, before the holder
  does any further work) decrements the waiter's pending count; the last
  one starts the relay chain, so the waiter resumes exactly two pops
  after the release — the DES's grant-then-``all_of`` distance — and
  after everything the releasing process pushed meanwhile.

The interval log doubles as the sampler's truth: ``active_at(now)`` counts
flows in flight with one vectorized comparison, so a sampled telemetry run
exports the same ``fabric_active_flows`` series the DES would.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sim import Environment, Event

_INITIAL_LOG = 64


class _Waiter:
    """A parked transfer: its wake event plus how many holders must finish."""

    __slots__ = ("wake", "pending")

    def __init__(self, wake: Event, pending: int) -> None:
        self.wake = wake
        self.pending = pending


class Flow:
    """One reserved transfer on the timeline (the hot per-transfer object)."""

    __slots__ = ("grant", "end", "wake", "committed", "tx_waiter", "rx_waiter")

    def __init__(self, grant: float, end: float, wake: Event | None) -> None:
        self.grant = grant
        self.end = end
        #: Event the transfer process must yield before proceeding past its
        #: grant instant; ``None`` means continue inline (quiescent case).
        self.wake = wake
        #: True once the flow's completion ran (its NICs are really free).
        self.committed = False
        #: The next flow queued on this flow's tx/rx NIC, if any.
        self.tx_waiter: _Waiter | None = None
        self.rx_waiter: _Waiter | None = None


class FlowTimeline:
    """Per-endpoint NIC FIFO timelines plus the flow-interval log."""

    def __init__(self, env: Environment, n_endpoints: int) -> None:
        if n_endpoints < 1:
            raise ConfigurationError(
                f"need at least one endpoint, got {n_endpoints}"
            )
        self.env = env
        self.n_endpoints = n_endpoints
        self._tx_free = np.zeros(n_endpoints)
        self._rx_free = np.zeros(n_endpoints)
        self._tx_owner: list[Flow | None] = [None] * n_endpoints
        self._rx_owner: list[Flow | None] = [None] * n_endpoints
        self._starts = np.empty(_INITIAL_LOG)
        self._ends = np.empty(_INITIAL_LOG)
        self._count = 0

    @property
    def transfers(self) -> int:
        """Transfers reserved so far (the deterministic hit count)."""
        return self._count

    def reserve(self, src: int, dst: int, now: float, wire: float) -> Flow:
        """Claim both NICs for one transfer and return its :class:`Flow`.

        ``flow.grant`` is the instant the DES would resume the transfer
        process (its ``all_of`` grant) and ``flow.end = grant + wire`` the
        instant its wire timeout would fire; both NIC timelines advance to
        ``end``.  ``flow.wake`` encodes how the caller must wait (see the
        module docstring's three cases).
        """
        env = self.env
        tx = float(self._tx_free[src])
        rx = float(self._rx_free[dst])
        grant = now
        if tx > grant:
            grant = tx
        if rx > grant:
            grant = rx
        # An endpoint blocks while its holder's completion has not run:
        # either the holder finishes in the future, or it finishes at this
        # very instant but its completion event has not popped yet (the
        # DES would still count the slot as held).
        tx_owner = self._tx_owner[src]
        rx_owner = self._rx_owner[dst]
        tx_blocks = tx_owner is not None and not tx_owner.committed and tx >= now
        rx_blocks = rx_owner is not None and not rx_owner.committed and rx >= now

        wake: Event | None = None
        if tx_blocks or rx_blocks:
            wake = Event(env)
            waiter = _Waiter(wake, 0)
            if tx_blocks:
                waiter.pending += 1
                tx_owner.tx_waiter = waiter
            if rx_blocks and rx_owner is not tx_owner:
                # One flow can hold both NICs (a back-to-back transfer on
                # the same src->dst pair); its single completion frees both.
                waiter.pending += 1
                rx_owner.rx_waiter = waiter
        elif not env.quiescent:
            # Granted at this instant, but other events are pending at it:
            # park on an immediate relay so the resume pops exactly where
            # the DES's all_of would.
            wake = Event(env)
            self._chain(wake)

        end = grant + wire
        flow = Flow(grant, end, wake)
        self._tx_free[src] = end
        self._rx_free[dst] = end
        self._tx_owner[src] = flow
        self._rx_owner[dst] = flow
        if self._count == self._starts.shape[0]:
            self._starts = np.concatenate([self._starts, np.empty_like(self._starts)])
            self._ends = np.concatenate([self._ends, np.empty_like(self._ends)])
        self._starts[self._count] = grant
        self._ends[self._count] = end
        self._count += 1
        return flow

    def complete(self, flow: Flow) -> None:
        """Release *flow*'s NICs (call right after its completion pops).

        Mirrors the DES ``finally`` block: tx released before rx, each
        release waking at most the FIFO-next queued transfer.  A waiter
        blocked on several holders resumes only when the last one
        completes — the ``all_of`` semantics.
        """
        flow.committed = True
        for waiter in (flow.tx_waiter, flow.rx_waiter):
            if waiter is None:
                continue
            waiter.pending -= 1
            if waiter.pending == 0:
                self._chain(waiter.wake)
        flow.tx_waiter = None
        flow.rx_waiter = None

    def _chain(self, wake: Event) -> None:
        """Fire *wake* two event pops from now (the grant → all_of distance).

        The relay is pushed at the caller's current execution point; its
        pop — after every event already queued at this instant — triggers
        the wake, whose own pop resumes the parked transfer after anything
        the intervening pops pushed, exactly as the DES's grant/``all_of``
        pair orders it.
        """
        relay = Event(self.env)
        relay.callbacks.append(lambda _event: wake.succeed())
        relay.succeed()

    def active_at(self, now: float) -> int:
        """Flows in flight at *now*: granted (start <= now) but not ended.

        Matches the DES's ``_active_flows`` gauge, which increments at the
        grant instant and decrements at the completion instant.
        """
        starts = self._starts[: self._count]
        ends = self._ends[: self._count]
        return int(np.count_nonzero((starts <= now) & (now < ends)))

    def busy_until(self, endpoint: int) -> tuple[float, float]:
        """(tx_free_at, rx_free_at) for *endpoint* — introspection/tests."""
        return float(self._tx_free[endpoint]), float(self._rx_free[endpoint])


def endpoints_disjoint(srcs: np.ndarray, dsts: np.ndarray, n_endpoints: int) -> bool:
    """True when a transfer set shares no NIC at all.

    A disjoint set (each endpoint appears at most once as source and at
    most once as destination) is the fully contention-free case: every
    transfer is granted at its arrival instant.
    """
    srcs = np.asarray(srcs, dtype=np.intp)
    dsts = np.asarray(dsts, dtype=np.intp)
    tx_load = np.bincount(srcs, minlength=n_endpoints)
    rx_load = np.bincount(dsts, minlength=n_endpoints)
    return bool(tx_load.max(initial=0) <= 1 and rx_load.max(initial=0) <= 1)


def batch_wire_seconds(
    nbytes: np.ndarray, rates: np.ndarray, latency: float
) -> np.ndarray:
    """Closed-form wire time for a batch of flows at constant *rates*.

    One vectorized expression replaces the DES's per-flow Python
    recomputation; zero-byte flows pay latency only, exactly as the DES's
    ``latency + (nbytes / rate if nbytes else 0.0)`` does.
    """
    nbytes = np.asarray(nbytes, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    seconds = np.divide(
        nbytes, rates, out=np.zeros_like(nbytes), where=nbytes > 0
    )
    return latency + seconds
