"""Enable the fast path on a cluster when eligibility holds.

:func:`install` is the single switch-on point: it decides eligibility
(:func:`~repro.fastpath.eligibility.decide_cluster`), and only when the
analytical timeline is provably exact does it flip the environment into
``fast_mode`` (inline resource/store grants) and hand the fabric a
:class:`~repro.fastpath.flows.FlowTimeline` (closed-form transfers).
An ineligible run is left completely untouched — callers can pass
``fast_path=True`` unconditionally and still get ground-truth DES
behaviour whenever the shortcut would be unsound.
"""

from __future__ import annotations

from typing import Any

from repro.fastpath.eligibility import FastPathDecision, decide_cluster
from repro.fastpath.flows import FlowTimeline


def install(
    cluster: Any, injector: Any = None, retry: Any = None
) -> FastPathDecision:
    """Enable the fast path on *cluster* if (and only if) it is eligible.

    Returns the decision either way; ``decision.eligible`` tells the
    caller whether the engine is actually active.
    """
    decision = decide_cluster(cluster, injector=injector, retry=retry)
    if decision.eligible:
        timeline = FlowTimeline(cluster.env, max(cluster.fabric.nodes) + 1)
        cluster.env.fast_mode = True
        cluster.fabric.enable_fast_path(timeline)
    return decision
