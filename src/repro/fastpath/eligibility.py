"""Static fast-path eligibility: when is the analytical timeline sound?

The analytical fabric timeline assumes every flow runs at its endpoint
rate ``min(src_nic, dst_nic)`` from grant to completion.  The full DES
computes ``min(endpoint, bisection / active_flows)`` — so the shortcut is
exact iff the fair share can never undercut the endpoint rate, and no
attached machinery can perturb rates or replay transfers mid-run:

* **no fault injector** — degradation windows change per-link rates and
  crashed nodes reorder queues;
* **no retry policy** — lost-message replays need the loss draw, which
  only the injector produces anyway, but an attached policy signals the
  caller expects them;
* **switch headroom** — at most one flow can hold each NIC's tx slot, so
  concurrent flows never exceed the attached endpoint count and
  ``bisection / endpoints >= fastest_nic`` guarantees the fair share
  never binds (every catalog preset satisfies this: 16 TX1 nodes plus
  the fileserver load a 480 Gbit/s 10 GbE switch at most ~11%).

The decision is a pure function of the topology, so the campaign runner
records it per spec without running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class FastPathDecision:
    """Why a run may (or may not) take the analytical fast path."""

    eligible: bool
    reasons: tuple[str, ...]
    endpoints: int
    max_nic_rate: float
    switch_headroom: float

    def describe(self) -> str:
        """One-line human-readable verdict."""
        if self.eligible:
            return (
                f"eligible ({self.endpoints} endpoints, "
                f"{self.switch_headroom:.1f}x switch headroom)"
            )
        return "ineligible: " + "; ".join(self.reasons)


def decide_cluster(
    cluster: Any, injector: Any = None, retry: Any = None
) -> FastPathDecision:
    """Decide eligibility for a built cluster (plus run-level attachments).

    *injector*/*retry* are the job-level attachments that would make the
    shortcut unsound; pass whatever the run will actually use.  The
    fabric's own injector (attached via ``set_fault_injector``) is
    consulted too.
    """
    fabric = cluster.fabric
    reasons: list[str] = []
    if injector is not None or fabric._injector is not None:
        reasons.append("a fault injector can degrade link rates mid-run")
    if retry is not None:
        reasons.append("a retry policy can replay transfers")
    nodes = list(fabric.nodes.values())
    endpoints = len(nodes)
    if endpoints == 0:
        reasons.append("no endpoints attached to the fabric")
        max_rate = 0.0
        headroom = 0.0
    else:
        max_rate = max(node.nic.achievable_rate for node in nodes)
        capacity = endpoints * max_rate
        headroom = (
            fabric.switch.bisection_bandwidth / capacity
            if capacity > 0 else float("inf")
        )
        if headroom < 1.0:
            reasons.append(
                f"switch bisection can bind: {endpoints} endpoints x "
                f"{max_rate:.3g} B/s exceeds "
                f"{fabric.switch.bisection_bandwidth:.3g} B/s"
            )
    return FastPathDecision(
        eligible=not reasons,
        reasons=tuple(reasons),
        endpoints=endpoints,
        max_nic_rate=max_rate,
        switch_headroom=headroom,
    )


def decide_spec(spec: Any) -> FastPathDecision:
    """Eligibility for a :class:`~repro.campaign.spec.RunSpec`.

    Builds the (cheap, deterministic) cluster the spec describes and
    decides from its topology; campaign runs use this to record
    ``fastpath`` eligibility per row without simulating anything.
    """
    from repro.campaign.spec import build_cluster

    return decide_cluster(build_cluster(spec))
