"""Fast-path simulation engine: analytical shortcuts around the DES.

When a run provably has no contended link — no fault injector degrading
rates, no retry policy replaying transfers, and a switch whose bisection
bandwidth can never bind (``endpoints * fastest_nic <= bisection``) — the
per-flow rate the full DES would compute is a constant known in advance,
and every transfer's completion time is a closed-form function of the
per-NIC FIFO timelines.  The engine then:

* replaces the fabric's request/all_of/timeout/release event cascade with
  one absolutely-timed event per transfer (:class:`FlowTimeline`,
  vectorized over endpoints with numpy);
* lets resources and stores grant immediately-available slots/items
  inline (``Environment.fast_mode``), skipping the queue round-trip.

The contract is *byte-identity*: a fast-path run must produce exactly the
same :class:`~repro.cluster.job.JobResult`, telemetry export, and campaign
rows as the full DES — only the host does less work.  Eligibility is
decided statically (:func:`decide_cluster` / :func:`decide_spec`) and the
equivalence suite (``tests/test_fastpath.py``) cross-validates every
workload x system x network preset.  See DESIGN.md, "Fast path".
"""

from repro.fastpath.eligibility import FastPathDecision, decide_cluster, decide_spec
from repro.fastpath.engine import install
from repro.fastpath.flows import (
    Flow,
    FlowTimeline,
    batch_wire_seconds,
    endpoints_disjoint,
)

__all__ = [
    "FastPathDecision",
    "Flow",
    "FlowTimeline",
    "batch_wire_seconds",
    "decide_cluster",
    "decide_spec",
    "endpoints_disjoint",
    "install",
]
